// Bump-pointer arena for kernel temporaries. The SIMD scanMatch and rollout
// paths stage beam endpoints, cell indices and per-lane scratch in arrays
// whose size changes every call; allocating them from the global heap inside
// parallel_kernel workers serializes on the allocator lock and fragments.
// The arena hands out pointers from reusable blocks, never frees on the hot
// path, and rewinds in O(1).
//
// Lifetime rules (see docs/kernels.md):
//  - allocations are only valid until the enclosing Scope rewinds (or
//    reset() is called) — never store arena pointers in long-lived objects;
//  - Arena is NOT thread-safe: use thread_scratch() (one arena per thread)
//    from parallel workers, which is what ExecutionContext::scratch() returns;
//  - alloc_array<T> only supports trivially-destructible T — the rewind does
//    not run destructors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace lgv {

class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = 64 * 1024;

  explicit Arena(size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes < 256 ? 256 : block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Aligned raw allocation; falls back to a dedicated oversized block when
  /// `bytes` exceeds the block size.
  void* allocate(size_t bytes, size_t align = 32) {
    if (bytes == 0) return blocks_.empty() ? nullptr : current_ptr();
    if (blocks_.empty()) new_block(bytes + align);
    uintptr_t p = reinterpret_cast<uintptr_t>(current_ptr());
    uintptr_t aligned = (p + (align - 1)) & ~static_cast<uintptr_t>(align - 1);
    const size_t needed = (aligned - p) + bytes;
    if (offset_ + needed > blocks_[block_].size) {
      new_block(bytes + align);
      p = reinterpret_cast<uintptr_t>(current_ptr());
      aligned = (p + (align - 1)) & ~static_cast<uintptr_t>(align - 1);
    }
    offset_ += (aligned - reinterpret_cast<uintptr_t>(current_ptr())) + bytes;
    bytes_live_ += bytes;
    high_water_ = bytes_live_ > high_water_ ? bytes_live_ : high_water_;
    return reinterpret_cast<void*>(aligned);
  }

  /// Typed array of `n` elements, 32-byte aligned, uninitialized.
  template <typename T>
  T* alloc_array(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena rewind does not run destructors");
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T) < 32 ? 32 : alignof(T)));
  }

  /// Rewind everything; blocks are kept for reuse (capacity survives).
  void reset() {
    block_ = 0;
    offset_ = 0;
    bytes_live_ = 0;
  }

  /// RAII watermark: rewinds to the construction point on destruction so
  /// nested kernel calls can share one per-thread arena.
  class Scope {
   public:
    explicit Scope(Arena& arena)
        : arena_(arena), block_(arena.block_), offset_(arena.offset_),
          live_(arena.bytes_live_) {}
    ~Scope() {
      arena_.block_ = block_;
      arena_.offset_ = offset_;
      arena_.bytes_live_ = live_;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Arena& arena_;
    size_t block_;
    size_t offset_;
    size_t live_;
  };

  size_t block_count() const { return blocks_.size(); }
  size_t bytes_live() const { return bytes_live_; }
  size_t high_water_bytes() const { return high_water_; }
  size_t capacity_bytes() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<uint8_t[]> data;
    size_t size = 0;
  };

  uint8_t* current_ptr() { return blocks_[block_].data.get() + offset_; }

  void new_block(size_t min_bytes) {
    // Advance to an existing spare block big enough, else append one.
    const size_t want = min_bytes > block_bytes_ ? min_bytes : block_bytes_;
    size_t next = blocks_.empty() ? 0 : block_ + 1;
    while (next < blocks_.size() && blocks_[next].size < want) ++next;
    if (next >= blocks_.size()) {
      Block b;
      b.data = std::make_unique<uint8_t[]>(want);
      b.size = want;
      blocks_.push_back(std::move(b));
      next = blocks_.size() - 1;
    }
    block_ = next;
    offset_ = 0;
  }

  size_t block_bytes_;
  std::vector<Block> blocks_;
  size_t block_ = 0;   ///< index of the block being bumped
  size_t offset_ = 0;  ///< bump offset inside blocks_[block_]
  size_t bytes_live_ = 0;
  size_t high_water_ = 0;
};

/// The per-thread scratch arena kernel code allocates temporaries from.
/// Exposed through ExecutionContext::scratch() inside parallel_kernel
/// workers; safe to call anywhere (main thread included).
inline Arena& thread_scratch() {
  static thread_local Arena arena;
  return arena;
}

}  // namespace lgv
