// SSE2 instantiation of the scanMatch kernels (baseline x86-64 — no extra
// compile flags needed; empty on other architectures, where dispatch never
// selects a vector level).
#include "common/simd_vec.h"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__SSE2__)

#include "common/simd_kernels_impl.h"

namespace lgv::simd::detail {

void transform_project_sse2(const TransformProjectArgs& args) {
  transform_project_impl<VecSSE2>(args);
}

double score_hits_sse2(const ScoreHitsArgs& args) {
  return score_hits_impl<VecSSE2>(args);
}

void exp_array_sse2(const double* x, double* out, size_t n) {
  exp_array_impl<VecSSE2>(x, out, n);
}

}  // namespace lgv::simd::detail

#endif
