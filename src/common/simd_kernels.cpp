// Level dispatch for the scanMatch kernels. The callers guard the scalar
// case themselves (the scalar reference loop lives in ScanMatcher::score),
// so an unavailable level degrades to the strongest one this build carries.
#include "common/simd_kernels.h"

#include <cassert>
#include <cmath>

namespace lgv::simd {

namespace {
Level clamp_to_build(Level level) {
#if !defined(LGV_HAVE_AVX2)
  if (level == Level::kAVX2) level = Level::kSSE2;
#endif
#if !defined(LGV_HAVE_SSE2)
  level = Level::kScalar;
#endif
  return level;
}
}  // namespace

void transform_project(Level level, const TransformProjectArgs& args) {
  level = clamp_to_build(level);
  assert(level != Level::kScalar && "caller owns the scalar path");
#if defined(LGV_HAVE_AVX2)
  if (level == Level::kAVX2) {
    detail::transform_project_avx2(args);
    return;
  }
#endif
#if defined(LGV_HAVE_SSE2)
  detail::transform_project_sse2(args);
#else
  (void)args;
#endif
}

double score_hits(Level level, const ScoreHitsArgs& args) {
  level = clamp_to_build(level);
  assert(level != Level::kScalar && "caller owns the scalar path");
#if defined(LGV_HAVE_AVX2)
  if (level == Level::kAVX2) return detail::score_hits_avx2(args);
#endif
#if defined(LGV_HAVE_SSE2)
  return detail::score_hits_sse2(args);
#else
  (void)args;
  return 0.0;
#endif
}

void exp_array(Level level, const double* x, double* out, size_t n) {
  level = clamp_to_build(level);
#if defined(LGV_HAVE_AVX2)
  if (level == Level::kAVX2) {
    detail::exp_array_avx2(x, out, n);
    return;
  }
#endif
#if defined(LGV_HAVE_SSE2)
  if (level != Level::kScalar) {
    detail::exp_array_sse2(x, out, n);
    return;
  }
#endif
  for (size_t i = 0; i < n; ++i) out[i] = std::exp(x[i]);
}

}  // namespace lgv::simd
