#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace lgv::simd {

namespace {

Level build_cap() {
#if defined(LGV_HAVE_AVX2)
  return Level::kAVX2;
#elif defined(LGV_HAVE_SSE2)
  return Level::kSSE2;
#else
  return Level::kScalar;
#endif
}

Level cpu_cap() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Level::kAVX2;
  }
  if (__builtin_cpu_supports("sse2")) return Level::kSSE2;
#endif
  return Level::kScalar;
}

Level min_level(Level a, Level b) { return static_cast<int>(a) < static_cast<int>(b) ? a : b; }

Level env_cap() {
  const char* env = std::getenv("LGV_SIMD");
  if (env == nullptr) return Level::kAVX2;  // no override: no extra cap
  if (std::strcmp(env, "scalar") == 0) return Level::kScalar;
  if (std::strcmp(env, "sse2") == 0) return Level::kSSE2;
  return Level::kAVX2;  // "avx2" or unrecognized: defer to detection
}

std::atomic<int> g_forced{-1};

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kSSE2: return "sse2";
    case Level::kAVX2: return "avx2";
  }
  return "?";
}

Level detected_level() {
  static const Level level = min_level(build_cap(), cpu_cap());
  return level;
}

Level active_level() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return min_level(static_cast<Level>(forced), detected_level());
  static const Level env_capped = min_level(env_cap(), detected_level());
  return env_capped;
}

void force_level(Level level) {
  g_forced.store(static_cast<int>(level), std::memory_order_relaxed);
}

void clear_forced_level() { g_forced.store(-1, std::memory_order_relaxed); }

}  // namespace lgv::simd
