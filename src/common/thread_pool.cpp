#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <memory>

#include "common/telemetry/telemetry.h"

namespace lgv {

namespace {
double elapsed_us(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

// Every condition wait in the pool is a timed wait. glibc before 2.41 can
// lose a condvar wakeup outright (bug 25847, "pthread_cond_signal failed to
// wake up pthread_cond_wait due to a bug in undoing stealing"): after heavy
// notify_one churn a later notify_all may leave one waiter asleep. During a
// mission a lost wake self-heals — workers re-check the queue after every
// task — but the destructor's notify_all is the last signal ever sent, and a
// worker that misses it sleeps forever while join() blocks. The periodic
// predicate re-check turns that into a bounded delay instead of a deadlock.
constexpr std::chrono::milliseconds kWaitSlice{100};

// Wall-clock microsecond buckets: 1 µs .. 100 ms.
std::vector<double> us_bounds() {
  return {1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
          1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5};
}
}  // namespace

ChunkRange chunk_range(size_t count, size_t chunks, size_t chunk) {
  assert(chunks > 0 && chunk < chunks);
  const size_t base = count / chunks;
  const size_t extra = count % chunks;
  const size_t begin = chunk * base + std::min(chunk, extra);
  const size_t len = base + (chunk < extra ? 1 : 0);
  return {begin, begin + len};
}

ThreadPool::ThreadPool(size_t num_threads) {
  sessions_[0];  // default session always exists
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::refresh_session_telemetry_locked(uint32_t id, SessionQueue& s) {
  if (telemetry_ == nullptr) {
    s.wait_us = nullptr;
    return;
  }
  const std::string label = s.label.empty() ? std::to_string(id) : s.label;
  s.wait_us = &telemetry_->metrics().histogram(
      "pool_task_wait_us", {{"pool", pool_name_}, {"session", label}}, us_bounds());
}

void ThreadPool::set_telemetry(telemetry::Telemetry* telemetry,
                               const std::string& pool_name) {
  const std::scoped_lock lock(mutex_);
  if (telemetry == nullptr || !telemetry->enabled()) {
    telemetry_ = nullptr;
    tasks_total_ = nullptr;
    busy_us_total_ = nullptr;
    queue_depth_ = nullptr;
    task_wait_us_ = nullptr;
    task_run_us_ = nullptr;
    for (auto& [id, s] : sessions_) s.wait_us = nullptr;
    return;
  }
  telemetry_ = telemetry;
  pool_name_ = pool_name;
  const telemetry::Labels labels = {{"pool", pool_name}};
  auto& m = telemetry->metrics();
  tasks_total_ = &m.counter("pool_tasks_total", labels);
  busy_us_total_ = &m.counter("pool_busy_us_total", labels);
  queue_depth_ = &m.gauge("pool_queue_depth", labels);
  task_wait_us_ = &m.histogram("pool_task_wait_us", labels, us_bounds());
  task_run_us_ = &m.histogram("pool_task_run_us", labels, us_bounds());
  // Sessions registered before the telemetry was attached get their
  // per-session wait series now. Session 0 keeps only the pool-level series
  // (its label would be noise for single-tenant pools).
  for (auto& [id, s] : sessions_) {
    if (id != 0) refresh_session_telemetry_locked(id, s);
  }
}

ThreadPool::SessionQueue& ThreadPool::session_locked(uint32_t session) {
  auto [it, inserted] = sessions_.try_emplace(session);
  if (inserted && session != 0) refresh_session_telemetry_locked(session, it->second);
  return it->second;
}

void ThreadPool::register_session(uint32_t session, uint64_t weight,
                                  const std::string& label, size_t max_queue) {
  const std::scoped_lock lock(mutex_);
  SessionQueue& s = session_locked(session);
  s.weight = std::max<uint64_t>(1, weight);
  s.label = label;
  s.max_queue = max_queue;
  if (session != 0) refresh_session_telemetry_locked(session, s);
}

size_t ThreadPool::session_queue_depth(uint32_t session) const {
  const std::scoped_lock lock(mutex_);
  const auto it = sessions_.find(session);
  return it == sessions_.end() ? 0 : it->second.queue.size();
}

void ThreadPool::enqueue_locked(uint32_t id, SessionQueue& s,
                                std::function<void()>&& task) {
  if (s.queue.empty()) {
    // A session going from idle to active re-enters the stride schedule at
    // the current virtual clock: it competes fairly from *now* instead of
    // replaying the share it didn't use while idle (which would let a
    // long-idle session monopolize the pool on return).
    s.vtime = std::max(s.vtime, vclock_);
    ready_.push_back(id);
  }
  s.queue.push_back({std::move(task), std::chrono::steady_clock::now()});
  ++queued_;
  ++in_flight_;
  if (queue_depth_ != nullptr) queue_depth_->set(static_cast<double>(queued_));
}

void ThreadPool::submit(std::function<void()> task) { submit(0, std::move(task)); }

void ThreadPool::submit(uint32_t session, std::function<void()> task) {
  {
    const std::scoped_lock lock(mutex_);
    enqueue_locked(session, session_locked(session), std::move(task));
  }
  task_ready_.notify_one();
}

bool ThreadPool::try_submit(uint32_t session, std::function<void()> task) {
  {
    const std::scoped_lock lock(mutex_);
    SessionQueue& s = session_locked(session);
    if (s.max_queue != 0 && s.queue.size() >= s.max_queue) return false;
    enqueue_locked(session, s, std::move(task));
  }
  task_ready_.notify_one();
  return true;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  while (!all_done_.wait_for(lock, kWaitSlice, [this] { return in_flight_ == 0; })) {
  }
}

ThreadPool::SessionQueue* ThreadPool::pick_locked() {
  // Stride dispatch: the ready session with the smallest virtual time runs
  // next; ties break toward the lowest id so the order is deterministic.
  // Linear scan of ready_ — the active-tenant count is small (≤ vehicles).
  if (ready_.empty()) return nullptr;
  size_t best = 0;
  for (size_t i = 1; i < ready_.size(); ++i) {
    const SessionQueue& a = sessions_.find(ready_[i])->second;
    const SessionQueue& b = sessions_.find(ready_[best])->second;
    if (a.vtime < b.vtime || (a.vtime == b.vtime && ready_[i] < ready_[best])) {
      best = i;
    }
  }
  const uint32_t id = ready_[best];
  SessionQueue* s = &sessions_.find(id)->second;
  vclock_ = s->vtime;
  // Unit task cost: fairness is by task count, which keeps the schedule
  // deterministic (run times are only known after the fact).
  s->vtime += 1.0 / static_cast<double>(s->weight);
  if (s->queue.size() == 1) {
    ready_[best] = ready_.back();
    ready_.pop_back();
  }
  return s;
}

void ThreadPool::worker_loop() {
  while (true) {
    QueuedTask task;
    // Handles read under the lock; they are stable for the pool's lifetime.
    telemetry::Counter* tasks_total = nullptr;
    telemetry::Counter* busy_us_total = nullptr;
    telemetry::Histogram* task_wait_us = nullptr;
    telemetry::Histogram* task_run_us = nullptr;
    telemetry::Histogram* session_wait_us = nullptr;
    {
      std::unique_lock lock(mutex_);
      while (!task_ready_.wait_for(lock, kWaitSlice,
                                   [this] { return stopping_ || queued_ > 0; })) {
      }
      SessionQueue* s = pick_locked();
      if (s == nullptr) return;  // stopping_ and drained
      task = std::move(s->queue.front());
      s->queue.pop_front();
      --queued_;
      tasks_total = tasks_total_;
      busy_us_total = busy_us_total_;
      task_wait_us = task_wait_us_;
      task_run_us = task_run_us_;
      session_wait_us = s->wait_us;
      if (queue_depth_ != nullptr) queue_depth_->set(static_cast<double>(queued_));
    }
    const auto start = std::chrono::steady_clock::now();
    task.fn();
    if (tasks_total != nullptr) {
      const auto end = std::chrono::steady_clock::now();
      const double run_us = elapsed_us(start, end);
      const double wait_us = elapsed_us(task.enqueued, start);
      tasks_total->inc();
      busy_us_total->inc(static_cast<uint64_t>(run_us));
      task_wait_us->observe(wait_us);
      task_run_us->observe(run_us);
      if (session_wait_us != nullptr) session_wait_us->observe(wait_us);
    }
    {
      const std::scoped_lock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_chunks(size_t count, size_t chunks,
                                 const std::function<void(size_t, size_t)>& fn) {
  parallel_chunks(0, count, chunks, fn);
}

void ThreadPool::parallel_chunks(uint32_t session, size_t count, size_t chunks,
                                 const std::function<void(size_t, size_t)>& fn) {
  if (count == 0) return;
  chunks = std::max<size_t>(1, std::min(chunks, count));
  if (chunks == 1) {
    fn(0, count);
    return;
  }
  std::atomic<size_t> remaining{chunks};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  for (size_t c = 0; c < chunks; ++c) {
    const ChunkRange r = chunk_range(count, chunks, c);
    submit(session, [&, r] {
      fn(r.begin, r.end);
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const std::scoped_lock lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock lock(done_mutex);
  while (!done_cv.wait_for(lock, kWaitSlice, [&] {
    return remaining.load(std::memory_order_acquire) == 0;
  })) {
  }
}

void ThreadPool::parallel_dynamic(size_t count, size_t grain,
                                  const std::function<void(size_t, size_t)>& fn) {
  parallel_dynamic(0, count, grain, fn);
}

void ThreadPool::parallel_dynamic(uint32_t session, size_t count, size_t grain,
                                  const std::function<void(size_t, size_t)>& fn) {
  if (count == 0) return;
  grain = std::max<size_t>(1, grain);
  const size_t n_grains = (count + grain - 1) / grain;
  const size_t n_tasks = std::min(num_threads(), n_grains);
  if (n_tasks <= 1) {
    fn(0, count);
    return;
  }
  // Shared grab counter: each worker task loops, claiming the next grain
  // until the counter passes count. The tail grain is short.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  std::atomic<size_t> remaining{n_tasks};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  for (size_t t = 0; t < n_tasks; ++t) {
    submit(session, [&, next, grain, count] {
      size_t begin;
      while ((begin = next->fetch_add(grain, std::memory_order_relaxed)) < count) {
        fn(begin, std::min(begin + grain, count));
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const std::scoped_lock lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock lock(done_mutex);
  while (!done_cv.wait_for(lock, kWaitSlice, [&] {
    return remaining.load(std::memory_order_acquire) == 0;
  })) {
  }
}

}  // namespace lgv
