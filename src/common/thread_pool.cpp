#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace lgv {

ChunkRange chunk_range(size_t count, size_t chunks, size_t chunk) {
  assert(chunks > 0 && chunk < chunks);
  const size_t base = count / chunks;
  const size_t extra = count % chunks;
  const size_t begin = chunk * base + std::min(chunk, extra);
  const size_t len = base + (chunk < extra ? 1 : 0);
  return {begin, begin + len};
}

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      const std::scoped_lock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_chunks(size_t count, size_t chunks,
                                 const std::function<void(size_t, size_t)>& fn) {
  if (count == 0) return;
  chunks = std::max<size_t>(1, std::min(chunks, count));
  if (chunks == 1) {
    fn(0, count);
    return;
  }
  std::atomic<size_t> remaining{chunks};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  for (size_t c = 0; c < chunks; ++c) {
    const ChunkRange r = chunk_range(count, chunks, c);
    submit([&, r] {
      fn(r.begin, r.end);
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const std::scoped_lock lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });
}

}  // namespace lgv
