#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "common/telemetry/telemetry.h"

namespace lgv {

namespace {
double elapsed_us(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

// Every condition wait in the pool is a timed wait. glibc before 2.41 can
// lose a condvar wakeup outright (bug 25847, "pthread_cond_signal failed to
// wake up pthread_cond_wait due to a bug in undoing stealing"): after heavy
// notify_one churn a later notify_all may leave one waiter asleep. During a
// mission a lost wake self-heals — workers re-check the queue after every
// task — but the destructor's notify_all is the last signal ever sent, and a
// worker that misses it sleeps forever while join() blocks. The periodic
// predicate re-check turns that into a bounded delay instead of a deadlock.
constexpr std::chrono::milliseconds kWaitSlice{100};

// Wall-clock microsecond buckets: 1 µs .. 100 ms.
std::vector<double> us_bounds() {
  return {1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
          1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5};
}
}  // namespace

ChunkRange chunk_range(size_t count, size_t chunks, size_t chunk) {
  assert(chunks > 0 && chunk < chunks);
  const size_t base = count / chunks;
  const size_t extra = count % chunks;
  const size_t begin = chunk * base + std::min(chunk, extra);
  const size_t len = base + (chunk < extra ? 1 : 0);
  return {begin, begin + len};
}

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::set_telemetry(telemetry::Telemetry* telemetry,
                               const std::string& pool_name) {
  const std::scoped_lock lock(mutex_);
  if (telemetry == nullptr || !telemetry->enabled()) {
    tasks_total_ = nullptr;
    busy_us_total_ = nullptr;
    queue_depth_ = nullptr;
    task_wait_us_ = nullptr;
    task_run_us_ = nullptr;
    return;
  }
  const telemetry::Labels labels = {{"pool", pool_name}};
  auto& m = telemetry->metrics();
  tasks_total_ = &m.counter("pool_tasks_total", labels);
  busy_us_total_ = &m.counter("pool_busy_us_total", labels);
  queue_depth_ = &m.gauge("pool_queue_depth", labels);
  task_wait_us_ = &m.histogram("pool_task_wait_us", labels, us_bounds());
  task_run_us_ = &m.histogram("pool_task_run_us", labels, us_bounds());
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::scoped_lock lock(mutex_);
    queue_.push_back({std::move(task), std::chrono::steady_clock::now()});
    ++in_flight_;
    if (queue_depth_ != nullptr) {
      queue_depth_->set(static_cast<double>(queue_.size()));
    }
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  while (!all_done_.wait_for(lock, kWaitSlice, [this] { return in_flight_ == 0; })) {
  }
}

void ThreadPool::worker_loop() {
  while (true) {
    QueuedTask task;
    // Handles read under the lock; they are stable for the pool's lifetime.
    telemetry::Counter* tasks_total = nullptr;
    telemetry::Counter* busy_us_total = nullptr;
    telemetry::Histogram* task_wait_us = nullptr;
    telemetry::Histogram* task_run_us = nullptr;
    {
      std::unique_lock lock(mutex_);
      while (!task_ready_.wait_for(
          lock, kWaitSlice, [this] { return stopping_ || !queue_.empty(); })) {
      }
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      tasks_total = tasks_total_;
      busy_us_total = busy_us_total_;
      task_wait_us = task_wait_us_;
      task_run_us = task_run_us_;
      if (queue_depth_ != nullptr) {
        queue_depth_->set(static_cast<double>(queue_.size()));
      }
    }
    const auto start = std::chrono::steady_clock::now();
    task.fn();
    if (tasks_total != nullptr) {
      const auto end = std::chrono::steady_clock::now();
      const double run_us = elapsed_us(start, end);
      tasks_total->inc();
      busy_us_total->inc(static_cast<uint64_t>(run_us));
      task_wait_us->observe(elapsed_us(task.enqueued, start));
      task_run_us->observe(run_us);
    }
    {
      const std::scoped_lock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_chunks(size_t count, size_t chunks,
                                 const std::function<void(size_t, size_t)>& fn) {
  if (count == 0) return;
  chunks = std::max<size_t>(1, std::min(chunks, count));
  if (chunks == 1) {
    fn(0, count);
    return;
  }
  std::atomic<size_t> remaining{chunks};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  for (size_t c = 0; c < chunks; ++c) {
    const ChunkRange r = chunk_range(count, chunks, c);
    submit([&, r] {
      fn(r.begin, r.end);
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const std::scoped_lock lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock lock(done_mutex);
  while (!done_cv.wait_for(lock, kWaitSlice, [&] {
    return remaining.load(std::memory_order_acquire) == 0;
  })) {
  }
}

void ThreadPool::parallel_dynamic(size_t count, size_t grain,
                                  const std::function<void(size_t, size_t)>& fn) {
  if (count == 0) return;
  grain = std::max<size_t>(1, grain);
  const size_t n_grains = (count + grain - 1) / grain;
  const size_t n_tasks = std::min(num_threads(), n_grains);
  if (n_tasks <= 1) {
    fn(0, count);
    return;
  }
  // Shared grab counter: each worker task loops, claiming the next grain
  // until the counter passes count. The tail grain is short.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  std::atomic<size_t> remaining{n_tasks};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  for (size_t t = 0; t < n_tasks; ++t) {
    submit([&, next, grain, count] {
      size_t begin;
      while ((begin = next->fetch_add(grain, std::memory_order_relaxed)) < count) {
        fn(begin, std::min(begin + grain, count));
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const std::scoped_lock lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock lock(done_mutex);
  while (!done_cv.wait_for(lock, kWaitSlice, [&] {
    return remaining.load(std::memory_order_acquire) == 0;
  })) {
  }
}

}  // namespace lgv
