// Structure-of-arrays building blocks for the hot kernels: a 32-byte-aligned
// vector (so AVX2 lanes can use aligned loads on the common case and the
// arrays never straddle a cache line at element 0) and PoseBlock, the SoA
// form of a set of Pose2D that the particle filters and the scan matcher
// stream x/y/θ lanes from.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/geometry.h"

namespace lgv {

/// Minimal aligned allocator (std::aligned_alloc under the hood). 32 bytes
/// covers an AVX2 lane; SSE2's 16 divides it.
template <typename T, std::size_t Alignment = 32>
struct AlignedAllocator {
  using value_type = T;
  static constexpr std::size_t kAlignment = Alignment;

  // The non-type Alignment parameter defeats allocator_traits' automatic
  // rebind; spell it out.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    // aligned_alloc requires the size to be a multiple of the alignment.
    const std::size_t bytes = ((n * sizeof(T) + Alignment - 1) / Alignment) * Alignment;
    void* p = std::aligned_alloc(Alignment, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept { return true; }
};

template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

/// SoA pose storage: three parallel aligned arrays instead of an array of
/// {x, y, θ} structs, so a kernel touching only x/y (or only θ) streams
/// contiguous memory and SIMD lanes load without shuffles.
class PoseBlock {
 public:
  size_t size() const { return x_.size(); }
  bool empty() const { return x_.empty(); }

  Pose2D at(size_t i) const { return Pose2D{x_[i], y_[i], theta_[i]}; }
  Pose2D operator[](size_t i) const { return at(i); }
  void set(size_t i, const Pose2D& p) {
    x_[i] = p.x;
    y_[i] = p.y;
    theta_[i] = p.theta;
  }
  void push_back(const Pose2D& p) {
    x_.push_back(p.x);
    y_.push_back(p.y);
    theta_.push_back(p.theta);
  }
  void clear() {
    x_.clear();
    y_.clear();
    theta_.clear();
  }
  void reserve(size_t n) {
    x_.reserve(n);
    y_.reserve(n);
    theta_.reserve(n);
  }
  void resize(size_t n) {
    x_.resize(n);
    y_.resize(n);
    theta_.resize(n);
  }
  void assign_all(size_t n, const Pose2D& p) {
    x_.assign(n, p.x);
    y_.assign(n, p.y);
    theta_.assign(n, p.theta);
  }

  const double* x() const { return x_.data(); }
  const double* y() const { return y_.data(); }
  const double* theta() const { return theta_.data(); }
  double* x() { return x_.data(); }
  double* y() { return y_.data(); }
  double* theta() { return theta_.data(); }

 private:
  aligned_vector<double> x_, y_, theta_;
};

}  // namespace lgv
