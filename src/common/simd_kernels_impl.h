// Templated kernel bodies instantiated once per ISA translation unit with
// the matching wrapper from simd_vec.h. Only include this from a TU whose
// compile flags provide the wrapper being instantiated.
//
// Tail policy: the last partial group is processed through the SAME vector
// code on padded stack buffers (remaining lanes duplicated), and only the
// valid lanes are written back / accumulated. Every element therefore sees
// an identical instruction sequence no matter how the caller blocks the
// input — the blocking-invariance the schedule-equivalence tests rely on.
#pragma once

#include <cmath>
#include <cstring>
#include <limits>

#include "common/simd_kernels.h"

namespace lgv::simd {

// Cephes-style exp: x = n·ln2 + r, e^r by a rational minimax in r², scaled
// by 2^n. ≤2 ulp over the clamped domain.
inline constexpr double kExpLog2E = 1.4426950408889634073599;
inline constexpr double kExpC1 = 6.93145751953125e-1;
inline constexpr double kExpC2 = 1.42860682030941723212e-6;
inline constexpr double kExpP0 = 1.26177193074810590878e-4;
inline constexpr double kExpP1 = 3.02994407707441961300e-2;
inline constexpr double kExpP2 = 9.99999999999999999910e-1;
inline constexpr double kExpQ0 = 3.00198505138664455042e-6;
inline constexpr double kExpQ1 = 2.52448340349684104192e-3;
inline constexpr double kExpQ2 = 2.27265548208155028766e-1;
inline constexpr double kExpQ3 = 2.00000000000000000005e0;

template <class V>
inline V exp_pd(V x) {
  x = V::min(V::max(x, V::set1(-708.0)), V::set1(708.0));
  const V n = V::floor(V::fma(x, V::set1(kExpLog2E), V::set1(0.5)));
  V r = V::fma(n, V::set1(-kExpC1), x);
  r = V::fma(n, V::set1(-kExpC2), r);
  const V rr = r * r;
  V px = V::fma(rr, V::set1(kExpP0), V::set1(kExpP1));
  px = V::fma(rr, px, V::set1(kExpP2));
  px = px * r;
  V qx = V::fma(rr, V::set1(kExpQ0), V::set1(kExpQ1));
  qx = V::fma(rr, qx, V::set1(kExpQ2));
  qx = V::fma(rr, qx, V::set1(kExpQ3));
  const V e = V::set1(1.0) + (V::set1(2.0) * (px / (qx - px)));
  return e * V::pow2i(n);
}

template <class V>
void transform_project_impl(const TransformProjectArgs& a) {
  constexpr int W = V::kWidth;
  const V px = V::set1(a.pose_x), py = V::set1(a.pose_y);
  const V ct = V::set1(a.cos_t), st = V::set1(a.sin_t);
  const V ox = V::set1(a.origin_x), oy = V::set1(a.origin_y);
  const V res = V::set1(a.resolution);

  // Mirrors the scalar reference op-for-op (mul, mul, add, sub — no fma;
  // division, not reciprocal-multiply) so the cell indices are bit-identical.
  auto group = [&](const double* bex, const double* bey, const double* bbx,
                   const double* bby, double* oex, double* oey, int32_t* ocx,
                   int32_t* ocy, int32_t* obx, int32_t* oby) {
    const V exl = V::load(bex), eyl = V::load(bey);
    const V wx = (px + ct * exl) - st * eyl;
    const V wy = (py + st * exl) + ct * eyl;
    V::store(oex, wx);
    V::store(oey, wy);
    V::store_floor_i32(ocx, V::floor((wx - ox) / res));
    V::store_floor_i32(ocy, V::floor((wy - oy) / res));
    const V bxl = V::load(bbx), byl = V::load(bby);
    const V vx = (px + ct * bxl) - st * byl;
    const V vy = (py + st * bxl) + ct * byl;
    V::store_floor_i32(obx, V::floor((vx - ox) / res));
    V::store_floor_i32(oby, V::floor((vy - oy) / res));
  };

  size_t i = 0;
  for (; i + W <= a.n; i += W) {
    group(a.end_x + i, a.end_y + i, a.before_x + i, a.before_y + i,
          a.out_end_x + i, a.out_end_y + i, a.out_end_cx + i, a.out_end_cy + i,
          a.out_before_cx + i, a.out_before_cy + i);
  }
  if (i < a.n) {
    const size_t rem = a.n - i;
    alignas(32) double bex[W], bey[W], bbx[W], bby[W], oex[W], oey[W];
    alignas(32) int32_t ocx[W], ocy[W], obx[W], oby[W];
    for (int l = 0; l < W; ++l) {
      const size_t s = i + (static_cast<size_t>(l) < rem ? l : rem - 1);
      bex[l] = a.end_x[s];
      bey[l] = a.end_y[s];
      bbx[l] = a.before_x[s];
      bby[l] = a.before_y[s];
    }
    group(bex, bey, bbx, bby, oex, oey, ocx, ocy, obx, oby);
    for (size_t l = 0; l < rem; ++l) {
      a.out_end_x[i + l] = oex[l];
      a.out_end_y[i + l] = oey[l];
      a.out_end_cx[i + l] = ocx[l];
      a.out_end_cy[i + l] = ocy[l];
      a.out_before_cx[i + l] = obx[l];
      a.out_before_cy[i + l] = oby[l];
    }
  }
}

template <class V>
double score_hits_impl(const ScoreHitsArgs& a) {
  constexpr int W = V::kWidth;
  const V ox = V::set1(a.origin_x), oy = V::set1(a.origin_y);
  const V res = V::set1(a.resolution);
  const V ts2 = V::set1(a.two_sigma2);
  const V inf = V::set1(std::numeric_limits<double>::infinity());

  // exp(−d²min/2σ²) of one W-wide group; the neighbor min replays the
  // scalar min_obstacle_d2 arithmetic (cell+offset+0.5 is exact in double,
  // the sub/mul/add sequence matches), just over all 9 bits with a mask
  // blend instead of a ctz loop.
  auto group = [&](const double* ex_p, const double* ey_p, const int32_t* cx_p,
                   const int32_t* cy_p, const int32_t* mask_p) -> V {
    const V ex = V::load(ex_p), ey = V::load(ey_p);
    const V cx = V::from_i32(cx_p), cy = V::from_i32(cy_p);
    V d2min = inf;
    for (int k = 0; k < 9; ++k) {
      const double offx = static_cast<double>(k % 3 - 1) + 0.5;
      const double offy = static_cast<double>(k / 3 - 1) + 0.5;
      const V cwx = ox + (cx + V::set1(offx)) * res;
      const V cwy = oy + (cy + V::set1(offy)) * res;
      const V dx = cwx - ex, dy = cwy - ey;
      const V d2 = (dx * dx) + (dy * dy);
      const V m = V::bitmask_from_i32(mask_p, 1 << k);
      d2min = V::select(m, V::min(d2min, d2), d2min);
    }
    return exp_pd<V>(V::zero() - (d2min / ts2));
  };

  V total = V::zero();
  size_t i = 0;
  for (; i + W <= a.n; i += W) {
    total = total + group(a.end_x + i, a.end_y + i, a.cell_x + i, a.cell_y + i,
                          a.neighbor_mask + i);
  }
  alignas(32) double lanes[W];
  V::store(lanes, total);
  double sum = 0.0;
  for (int l = 0; l < W; ++l) sum += lanes[l];
  if (i < a.n) {
    const size_t rem = a.n - i;
    alignas(32) double ex[W], ey[W];
    alignas(32) int32_t cx[W], cy[W], mk[W];
    for (int l = 0; l < W; ++l) {
      const size_t s = i + (static_cast<size_t>(l) < rem ? l : rem - 1);
      ex[l] = a.end_x[s];
      ey[l] = a.end_y[s];
      cx[l] = a.cell_x[s];
      cy[l] = a.cell_y[s];
      mk[l] = a.neighbor_mask[s];
    }
    V::store(lanes, group(ex, ey, cx, cy, mk));
    for (size_t l = 0; l < rem; ++l) sum += lanes[l];
  }
  return sum;
}

template <class V>
void exp_array_impl(const double* x, double* out, size_t n) {
  constexpr int W = V::kWidth;
  size_t i = 0;
  for (; i + W <= n; i += W) V::store(out + i, exp_pd<V>(V::load(x + i)));
  if (i < n) {
    alignas(32) double buf[W];
    for (int l = 0; l < W; ++l) buf[l] = x[i + (static_cast<size_t>(l) < n - i ? l : 0)];
    V::store(buf, exp_pd<V>(V::load(buf)));
    for (size_t l = 0; l < n - i; ++l) out[i + l] = buf[l];
  }
}

}  // namespace lgv::simd
