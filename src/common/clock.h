// Simulated time. The whole system runs on virtual time so that platform
// cost models (src/platform) — not host wall-clock — determine node latency.
#pragma once

#include <cstdint>

namespace lgv {

/// Virtual time in seconds since the start of the experiment.
using SimTime = double;

/// A monotonically advancing virtual clock owned by the simulation engine.
/// Components hold a const reference and read `now()`; only the engine
/// advances it.
class SimClock {
 public:
  SimTime now() const { return now_; }

  void advance(SimTime dt) { now_ += dt; }
  void set(SimTime t) { now_ = t; }
  void reset() { now_ = 0.0; }

 private:
  SimTime now_ = 0.0;
};

}  // namespace lgv
