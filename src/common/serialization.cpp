#include "common/serialization.h"

namespace lgv {

void WireWriter::put_varint(uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buffer_.push_back(static_cast<uint8_t>(v));
}

void WireWriter::put_double(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) buffer_.push_back(static_cast<uint8_t>(bits >> (8 * i)));
}

void WireWriter::put_float(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 4; ++i) buffer_.push_back(static_cast<uint8_t>(bits >> (8 * i)));
}

void WireWriter::put_string(const std::string& s) {
  put_varint(s.size());
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void WireWriter::put_bytes(const void* data, size_t size) {
  const auto* p = static_cast<const uint8_t*>(data);
  buffer_.insert(buffer_.end(), p, p + size);
}

void WireWriter::put_repeated_varint(const std::vector<uint64_t>& values) {
  put_varint(values.size());
  for (uint64_t v : values) put_varint(v);
}

void WireWriter::put_repeated_i8(const std::vector<int8_t>& values) {
  put_varint(values.size());
  for (int8_t v : values) buffer_.push_back(static_cast<uint8_t>(v));
}

uint64_t WireReader::get_varint() {
  uint64_t result = 0;
  int shift = 0;
  while (true) {
    require(1);
    const uint8_t byte = data_[pos_++];
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift >= 64) throw std::out_of_range("WireReader: varint too long");
  }
  return result;
}

double WireReader::get_double() {
  require(8);
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) bits |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

float WireReader::get_float() {
  require(4);
  uint32_t bits = 0;
  for (int i = 0; i < 4; ++i) bits |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::get_string() {
  const size_t n = get_varint();
  require(n);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

std::vector<uint8_t> WireReader::get_raw(size_t n) {
  require(n);
  std::vector<uint8_t> out(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return out;
}

std::vector<double> WireReader::get_repeated_double() {
  const size_t n = checked_count(get_varint(), 8);
  std::vector<double> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(get_double());
  return out;
}

std::vector<float> WireReader::get_repeated_float() {
  const size_t n = checked_count(get_varint(), 4);
  std::vector<float> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(get_float());
  return out;
}

std::vector<uint64_t> WireReader::get_repeated_varint() {
  // Each varint element occupies at least one byte.
  const size_t n = checked_count(get_varint(), 1);
  std::vector<uint64_t> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(get_varint());
  return out;
}

std::vector<int8_t> WireReader::get_repeated_i8() {
  const size_t n = checked_count(get_varint(), 1);
  require(n);
  std::vector<int8_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = static_cast<int8_t>(data_[pos_ + i]);
  pos_ += n;
  return out;
}

}  // namespace lgv
