// Deterministic random number generation. Every stochastic component in the
// library takes an explicit Rng so experiments are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <random>

namespace lgv {

/// SplitMix64 finalizer (Steele, Lea & Flood 2014): a cheap bijective mixer
/// whose output passes BigCrush. Used to derive independent seeds from a
/// shared base — adjacent inputs (fleet seed + 0, + 1, + 2, ...) land at
/// uncorrelated points of the output space, unlike xor-ing a small salt.
inline uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Per-vehicle seed for a fleet: every simulated LGV shares one fleet seed
/// but must draw an independent stream (identical seeds would give perfectly
/// correlated scan noise and particle clouds across the whole fleet —
/// invalidating any fleet-scale measurement). Two rounds of splitmix64 so
/// that (seed, index) and (seed + 1, index - 1) cannot collide.
inline uint64_t vehicle_seed(uint64_t fleet_seed, uint32_t vehicle_index) {
  return splitmix64(splitmix64(fleet_seed) + vehicle_index);
}

/// Seedable pseudo-random source (Mersenne Twister under the hood) with the
/// handful of draws the robotics stack needs. Not thread-safe by design:
/// parallel code forks per-thread child generators via `fork()`.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Derive an independent child generator; deterministic given this
  /// generator's current state and `salt`.
  Rng fork(uint64_t salt) {
    return Rng(engine_() ^ (salt * 0x9e3779b97f4a7c15ULL));
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace lgv
