// Per-ISA double-lane wrapper structs for the templated kernel bodies in
// simd_kernels_impl.h / rollout_kernels_impl.h. Each SIMD translation unit
// instantiates the kernels with the wrapper its compile flags make available
// (VecSSE2 under __SSE2__, VecAVX2 under __AVX2__); the wrappers themselves
// are only defined when the corresponding ISA macro is set, so including
// this header from a plain TU is harmless.
//
// Numerics contract (docs/kernels.md): plain +,-,*,/ and floor() are exactly
// the IEEE operations the scalar reference performs (the SIMD TUs build with
// -ffp-contract=off so the compiler cannot fuse them behind our back). fma()
// is a genuine fused op only on AVX2 — use it where the scalar reference's
// rounding does not have to be matched bit-for-bit (polynomials, rollout
// integration), never in the grid-projection math that feeds cell indices.
#pragma once

#include <bit>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace lgv::simd {

#if (defined(__x86_64__) || defined(__i386__)) && defined(__SSE2__)

struct VecSSE2 {
  static constexpr int kWidth = 2;
  __m128d v;

  static VecSSE2 load(const double* p) { return {_mm_loadu_pd(p)}; }
  static void store(double* p, VecSSE2 a) { _mm_storeu_pd(p, a.v); }
  static VecSSE2 set1(double x) { return {_mm_set1_pd(x)}; }
  static VecSSE2 zero() { return {_mm_setzero_pd()}; }

  friend VecSSE2 operator+(VecSSE2 a, VecSSE2 b) { return {_mm_add_pd(a.v, b.v)}; }
  friend VecSSE2 operator-(VecSSE2 a, VecSSE2 b) { return {_mm_sub_pd(a.v, b.v)}; }
  friend VecSSE2 operator*(VecSSE2 a, VecSSE2 b) { return {_mm_mul_pd(a.v, b.v)}; }
  friend VecSSE2 operator/(VecSSE2 a, VecSSE2 b) { return {_mm_div_pd(a.v, b.v)}; }

  /// a*b + c. SSE2 has no fused op; mul+add keeps lane arithmetic identical
  /// to this TU's padded-tail path (which is all that the blocking-invariance
  /// contract needs).
  static VecSSE2 fma(VecSSE2 a, VecSSE2 b, VecSSE2 c) { return a * b + c; }

  static VecSSE2 min(VecSSE2 a, VecSSE2 b) { return {_mm_min_pd(a.v, b.v)}; }
  static VecSSE2 max(VecSSE2 a, VecSSE2 b) { return {_mm_max_pd(a.v, b.v)}; }
  static VecSSE2 cmp_gt(VecSSE2 a, VecSSE2 b) { return {_mm_cmpgt_pd(a.v, b.v)}; }
  static VecSSE2 cmp_lt(VecSSE2 a, VecSSE2 b) { return {_mm_cmplt_pd(a.v, b.v)}; }
  static VecSSE2 and_(VecSSE2 a, VecSSE2 b) { return {_mm_and_pd(a.v, b.v)}; }
  static VecSSE2 select(VecSSE2 mask, VecSSE2 a, VecSSE2 b) {
    return {_mm_or_pd(_mm_and_pd(mask.v, a.v), _mm_andnot_pd(mask.v, b.v))};
  }

  /// floor() without SSE4.1: truncate toward zero, then step down where the
  /// truncation rounded a negative fraction up. Valid for |x| < 2^31, which
  /// covers every grid-relative coordinate the kernels project.
  static VecSSE2 floor(VecSSE2 a) {
    const __m128d t = _mm_cvtepi32_pd(_mm_cvttpd_epi32(a.v));
    return {_mm_sub_pd(t, _mm_and_pd(_mm_cmpgt_pd(t, a.v), _mm_set1_pd(1.0)))};
  }

  /// Store the integer value of an already-integral vector (floor output).
  static void store_floor_i32(int32_t* p, VecSSE2 floored) {
    _mm_storel_epi64(reinterpret_cast<__m128i*>(p), _mm_cvttpd_epi32(floored.v));
  }

  /// Load kWidth int32 values and convert to double lanes.
  static VecSSE2 from_i32(const int32_t* p) {
    return {_mm_cvtepi32_pd(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)))};
  }

  /// All-ones lane where (p[i] & bit) != 0, else zero — a select() mask.
  static VecSSE2 bitmask_from_i32(const int32_t* p, int32_t bit) {
    const __m128i m = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
    const __m128i b = _mm_set1_epi32(bit);
    const __m128i eq = _mm_cmpeq_epi32(_mm_and_si128(m, b), b);
    return {_mm_castsi128_pd(_mm_unpacklo_epi32(eq, eq))};
  }

  /// 2^n for integral-valued lanes, |n| <= 1022: exponent-field construction.
  static VecSSE2 pow2i(VecSSE2 n) {
    alignas(16) double buf[2];
    store(buf, n);
    for (int i = 0; i < 2; ++i) {
      buf[i] = std::bit_cast<double>((static_cast<int64_t>(buf[i]) + 1023) << 52);
    }
    return load(buf);
  }
};

#endif  // __SSE2__

#if (defined(__x86_64__) || defined(__i386__)) && defined(__AVX2__)

struct VecAVX2 {
  static constexpr int kWidth = 4;
  __m256d v;

  static VecAVX2 load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static void store(double* p, VecAVX2 a) { _mm256_storeu_pd(p, a.v); }
  static VecAVX2 set1(double x) { return {_mm256_set1_pd(x)}; }
  static VecAVX2 zero() { return {_mm256_setzero_pd()}; }

  friend VecAVX2 operator+(VecAVX2 a, VecAVX2 b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend VecAVX2 operator-(VecAVX2 a, VecAVX2 b) { return {_mm256_sub_pd(a.v, b.v)}; }
  friend VecAVX2 operator*(VecAVX2 a, VecAVX2 b) { return {_mm256_mul_pd(a.v, b.v)}; }
  friend VecAVX2 operator/(VecAVX2 a, VecAVX2 b) { return {_mm256_div_pd(a.v, b.v)}; }

  static VecAVX2 fma(VecAVX2 a, VecAVX2 b, VecAVX2 c) {
    return {_mm256_fmadd_pd(a.v, b.v, c.v)};
  }

  static VecAVX2 min(VecAVX2 a, VecAVX2 b) { return {_mm256_min_pd(a.v, b.v)}; }
  static VecAVX2 max(VecAVX2 a, VecAVX2 b) { return {_mm256_max_pd(a.v, b.v)}; }
  static VecAVX2 cmp_gt(VecAVX2 a, VecAVX2 b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)};
  }
  static VecAVX2 cmp_lt(VecAVX2 a, VecAVX2 b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)};
  }
  static VecAVX2 and_(VecAVX2 a, VecAVX2 b) { return {_mm256_and_pd(a.v, b.v)}; }
  static VecAVX2 select(VecAVX2 mask, VecAVX2 a, VecAVX2 b) {
    return {_mm256_blendv_pd(b.v, a.v, mask.v)};
  }

  static VecAVX2 floor(VecAVX2 a) { return {_mm256_floor_pd(a.v)}; }

  static void store_floor_i32(int32_t* p, VecAVX2 floored) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), _mm256_cvttpd_epi32(floored.v));
  }

  static VecAVX2 from_i32(const int32_t* p) {
    return {_mm256_cvtepi32_pd(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)))};
  }

  static VecAVX2 bitmask_from_i32(const int32_t* p, int32_t bit) {
    const __m128i m = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const __m128i b = _mm_set1_epi32(bit);
    const __m128i eq = _mm_cmpeq_epi32(_mm_and_si128(m, b), b);
    return {_mm256_castsi256_pd(_mm256_cvtepi32_epi64(eq))};
  }

  static VecAVX2 pow2i(VecAVX2 n) {
    const __m128i i32 = _mm256_cvttpd_epi32(n.v);
    const __m256i i64 = _mm256_cvtepi32_epi64(i32);
    const __m256i bits =
        _mm256_slli_epi64(_mm256_add_epi64(i64, _mm256_set1_epi64x(1023)), 52);
    return {_mm256_castsi256_pd(bits)};
  }
};

#endif  // __AVX2__

}  // namespace lgv::simd
