#include "common/telemetry/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <ostream>

namespace lgv::telemetry {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

/// Microsecond timestamp with fixed 3-decimal precision: deterministic and
/// fine enough for sub-µs virtual durations.
std::string fmt_us(double seconds) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

bool looks_numeric(const std::string& v) {
  if (v.empty()) return false;
  char* end = nullptr;
  std::strtod(v.c_str(), &end);
  return end == v.c_str() + v.size();
}

void write_args(std::ostream& os, const TraceArgs& args) {
  os << "\"args\":{";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i) os << ",";
    os << "\"" << json_escape(args[i].first) << "\":";
    if (looks_numeric(args[i].second)) {
      os << args[i].second;
    } else {
      os << "\"" << json_escape(args[i].second) << "\"";
    }
  }
  os << "}";
}

/// Stable pid/tid numbering: lanes are numbered in first-appearance order so
/// the output only depends on the event sequence.
struct LaneIds {
  std::map<std::string, int> pids;
  std::map<std::pair<std::string, std::string>, int> tids;

  int pid(const std::string& p) {
    auto [it, inserted] = pids.try_emplace(p, static_cast<int>(pids.size()) + 1);
    return it->second;
  }
  int tid(const std::string& p, const std::string& t) {
    auto [it, inserted] =
        tids.try_emplace({p, t}, static_cast<int>(tids.size()) + 1);
    return it->second;
  }
};

void write_event(std::ostream& os, const TraceEvent& e, LaneIds& lanes) {
  os << "{\"name\":\"" << json_escape(e.name) << "\",\"ph\":\"" << e.phase
     << "\",\"ts\":" << fmt_us(e.ts_s);
  if (e.phase == 'X') os << ",\"dur\":" << fmt_us(e.dur_s);
  os << ",\"pid\":" << lanes.pid(e.pid) << ",\"tid\":" << lanes.tid(e.pid, e.tid);
  if (e.phase == 'i') os << ",\"s\":\"t\"";  // instant scoped to its thread lane
  if (!e.args.empty()) {
    os << ",";
    write_args(os, e.args);
  }
  os << "}";
}

}  // namespace

void Tracer::record(TraceEvent e) {
  const std::scoped_lock lock(mutex_);
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(e));
}

void Tracer::span(std::string name, std::string pid, std::string tid, double start_s,
                  double dur_s, TraceArgs args) {
  TraceEvent e;
  e.name = std::move(name);
  e.phase = 'X';
  e.ts_s = start_s;
  e.dur_s = dur_s;
  e.pid = std::move(pid);
  e.tid = std::move(tid);
  e.args = std::move(args);
  record(std::move(e));
}

void Tracer::instant(std::string name, std::string pid, std::string tid, double t_s,
                     TraceArgs args) {
  TraceEvent e;
  e.name = std::move(name);
  e.phase = 'i';
  e.ts_s = t_s;
  e.pid = std::move(pid);
  e.tid = std::move(tid);
  e.args = std::move(args);
  record(std::move(e));
}

void Tracer::instant_now(std::string name, std::string pid, std::string tid,
                         TraceArgs args) {
  instant(std::move(name), std::move(pid), std::move(tid), now(), std::move(args));
}

size_t Tracer::size() const {
  const std::scoped_lock lock(mutex_);
  return events_.size();
}

uint64_t Tracer::dropped() const {
  const std::scoped_lock lock(mutex_);
  return dropped_;
}

void Tracer::clear() {
  const std::scoped_lock lock(mutex_);
  events_.clear();
  dropped_ = 0;
}

std::vector<TraceEvent> Tracer::events() const {
  const std::scoped_lock lock(mutex_);
  return events_;
}

void Tracer::write_chrome_json(std::ostream& os) const {
  const std::vector<TraceEvent> events = this->events();
  LaneIds lanes;
  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",\n";
    first = false;
    write_event(os, e, lanes);
  }
  // Metadata events name the numeric lanes after their host / node strings.
  for (const auto& [name, id] : lanes.pids) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << id
       << ",\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
  }
  for (const auto& [key, id] : lanes.tids) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << lanes.pid(key.first)
       << ",\"tid\":" << id << ",\"args\":{\"name\":\"" << json_escape(key.second)
       << "\"}}";
  }
  os << "\n]}\n";
}

void Tracer::write_jsonl(std::ostream& os) const {
  const std::vector<TraceEvent> events = this->events();
  LaneIds lanes;
  for (const TraceEvent& e : events) {
    write_event(os, e, lanes);
    os << "\n";
  }
}

}  // namespace lgv::telemetry
