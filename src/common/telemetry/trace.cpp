#include "common/telemetry/trace.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <ostream>

#include "common/telemetry/json_util.h"

namespace lgv::telemetry {

namespace {

/// Microsecond timestamp with fixed 3-decimal precision: deterministic and
/// fine enough for sub-µs virtual durations.
std::string fmt_us(double seconds) { return json_fixed(seconds * 1e6, 3); }

bool looks_numeric(const std::string& v) {
  if (v.empty()) return false;
  char* end = nullptr;
  std::strtod(v.c_str(), &end);
  return end == v.c_str() + v.size();
}

void write_args(std::ostream& os, const TraceArgs& args) {
  os << "\"args\":{";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i) os << ",";
    os << "\"" << json_escape(args[i].first) << "\":";
    if (looks_numeric(args[i].second)) {
      os << args[i].second;
    } else {
      os << "\"" << json_escape(args[i].second) << "\"";
    }
  }
  os << "}";
}

/// Stable pid/tid numbering: lanes are numbered in first-appearance order so
/// the output only depends on the event sequence.
struct LaneIds {
  std::map<std::string, int> pids;
  std::map<std::pair<std::string, std::string>, int> tids;

  int pid(const std::string& p) {
    auto [it, inserted] = pids.try_emplace(p, static_cast<int>(pids.size()) + 1);
    return it->second;
  }
  int tid(const std::string& p, const std::string& t) {
    auto [it, inserted] =
        tids.try_emplace({p, t}, static_cast<int>(tids.size()) + 1);
    return it->second;
  }
};

/// Causal identity fields, present only when the event was recorded inside a
/// trace — untraced output stays byte-identical to the pre-context schema.
void write_trace_ids(std::ostream& os, const TraceEvent& e) {
  if (e.span_id == 0) return;
  os << ",\"trace_id\":" << e.trace_id << ",\"span_id\":" << e.span_id;
  if (e.parent_span_id != 0) os << ",\"parent_span_id\":" << e.parent_span_id;
}

void write_event_chrome(std::ostream& os, const TraceEvent& e, LaneIds& lanes) {
  os << "{\"name\":\"" << json_escape(e.name) << "\",\"ph\":\"" << e.phase
     << "\",\"ts\":" << fmt_us(e.ts_s);
  if (e.phase == 'X') os << ",\"dur\":" << fmt_us(e.dur_s);
  os << ",\"pid\":" << lanes.pid(e.pid) << ",\"tid\":" << lanes.tid(e.pid, e.tid);
  if (e.phase == 'i') os << ",\"s\":\"t\"";  // instant scoped to its thread lane
  write_trace_ids(os, e);
  if (!e.args.empty()) {
    os << ",";
    write_args(os, e.args);
  }
  os << "}";
}

/// JSONL keeps pid/tid as the host / node name strings: jq filters and the
/// critical-path analyzer classify spans by lane name, not lane number.
void write_event_jsonl(std::ostream& os, const TraceEvent& e) {
  os << "{\"name\":\"" << json_escape(e.name) << "\",\"ph\":\"" << e.phase
     << "\",\"ts\":" << fmt_us(e.ts_s);
  if (e.phase == 'X') os << ",\"dur\":" << fmt_us(e.dur_s);
  os << ",\"pid\":\"" << json_escape(e.pid) << "\",\"tid\":\"" << json_escape(e.tid)
     << "\"";
  if (e.phase == 'i') os << ",\"s\":\"t\"";
  write_trace_ids(os, e);
  if (!e.args.empty()) {
    os << ",";
    write_args(os, e.args);
  }
  os << "}";
}

}  // namespace

void Tracer::set_vehicle_id(std::string vehicle_id) {
  const std::scoped_lock lock(mutex_);
  vehicle_id_ = std::move(vehicle_id);
}

TraceContext Tracer::begin_trace() {
  const std::scoped_lock lock(mutex_);
  current_ = TraceContext{++next_trace_id_, 0};
  return current_;
}

void Tracer::set_current(TraceContext ctx) {
  const std::scoped_lock lock(mutex_);
  current_ = ctx;
}

TraceContext Tracer::current() const {
  const std::scoped_lock lock(mutex_);
  return current_;
}

uint32_t Tracer::record(TraceEvent e) {
  const std::scoped_lock lock(mutex_);
  if (current_.trace_id != 0) {
    e.trace_id = current_.trace_id;
    e.span_id = ++next_span_id_;
    e.parent_span_id = current_.span_id;
  }
  if (!vehicle_id_.empty()) e.args.emplace_back("vehicle_id", vehicle_id_);
  const uint32_t assigned = e.span_id;
  if (flight_capacity_ > 0) {
    if (flight_.size() < flight_capacity_) {
      flight_.push_back(e);
    } else {
      flight_[flight_head_] = e;
      ++flight_overwritten_;
    }
    flight_head_ = (flight_head_ + 1) % flight_capacity_;
  }
  if (events_.size() >= max_events_) {
    ++dropped_;
    if (dropped_counter_ != nullptr) dropped_counter_->inc();
    return assigned;
  }
  events_.push_back(std::move(e));
  return assigned;
}

uint32_t Tracer::span(std::string name, std::string pid, std::string tid,
                      double start_s, double dur_s, TraceArgs args) {
  TraceEvent e;
  e.name = std::move(name);
  e.phase = 'X';
  e.ts_s = start_s;
  e.dur_s = dur_s;
  e.pid = std::move(pid);
  e.tid = std::move(tid);
  e.args = std::move(args);
  return record(std::move(e));
}

uint32_t Tracer::instant(std::string name, std::string pid, std::string tid,
                         double t_s, TraceArgs args) {
  TraceEvent e;
  e.name = std::move(name);
  e.phase = 'i';
  e.ts_s = t_s;
  e.pid = std::move(pid);
  e.tid = std::move(tid);
  e.args = std::move(args);
  return record(std::move(e));
}

uint32_t Tracer::instant_now(std::string name, std::string pid, std::string tid,
                             TraceArgs args) {
  return instant(std::move(name), std::move(pid), std::move(tid), now(),
                 std::move(args));
}

size_t Tracer::size() const {
  const std::scoped_lock lock(mutex_);
  return events_.size();
}

uint64_t Tracer::dropped() const {
  const std::scoped_lock lock(mutex_);
  return dropped_;
}

void Tracer::clear() {
  const std::scoped_lock lock(mutex_);
  events_.clear();
  dropped_ = 0;
  flight_.clear();
  flight_head_ = 0;
  flight_overwritten_ = 0;
  current_ = TraceContext{};
}

std::vector<TraceEvent> Tracer::events() const {
  const std::scoped_lock lock(mutex_);
  return events_;
}

uint64_t Tracer::flight_overwritten() const {
  const std::scoped_lock lock(mutex_);
  return flight_overwritten_;
}

std::vector<TraceEvent> Tracer::flight_events() const {
  const std::scoped_lock lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(flight_.size());
  if (flight_.size() < flight_capacity_) {
    out = flight_;
  } else {
    // Full ring: oldest entry sits at the next overwrite position.
    out.insert(out.end(), flight_.begin() + static_cast<long>(flight_head_),
               flight_.end());
    out.insert(out.end(), flight_.begin(),
               flight_.begin() + static_cast<long>(flight_head_));
  }
  return out;
}

void Tracer::write_chrome_json(std::ostream& os) const {
  const std::vector<TraceEvent> events = this->events();
  LaneIds lanes;
  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",\n";
    first = false;
    write_event_chrome(os, e, lanes);
  }
  // Metadata events name the numeric lanes after their host / node strings.
  for (const auto& [name, id] : lanes.pids) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << id
       << ",\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
  }
  for (const auto& [key, id] : lanes.tids) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << lanes.pid(key.first)
       << ",\"tid\":" << id << ",\"args\":{\"name\":\"" << json_escape(key.second)
       << "\"}}";
  }
  os << "\n]}\n";
}

void Tracer::write_jsonl(std::ostream& os) const {
  const std::vector<TraceEvent> events = this->events();
  for (const TraceEvent& e : events) {
    write_event_jsonl(os, e);
    os << "\n";
  }
}

void Tracer::write_flight_jsonl(std::ostream& os) const {
  const std::vector<TraceEvent> events = this->flight_events();
  for (const TraceEvent& e : events) {
    write_event_jsonl(os, e);
    os << "\n";
  }
}

}  // namespace lgv::telemetry
