// The telemetry bundle handed to instrumented components: one metrics
// registry + one tracer sharing the virtual clock. Components hold a
// `telemetry::Telemetry*` that is nullptr when telemetry is disabled, so the
// disabled path costs exactly one pointer test on each hot path.
//
//   Telemetry t;                      // or Telemetry(config)
//   t.set_clock(&clock);              // virtual-time stamping
//   graph.set_telemetry(&t);          // component wiring
//   ...
//   t.tracer().write_chrome_json(os); // load the result in Perfetto
//   t.metrics().write_json(os);
#pragma once

#include "common/telemetry/metrics.h"
#include "common/telemetry/trace.h"

namespace lgv::telemetry {

struct TelemetryConfig {
  bool enabled = true;
  /// Tracer event cap (see Tracer).
  size_t max_trace_events = 1u << 20;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config = {})
      : config_(config), tracer_(config.max_trace_events) {}

  const TelemetryConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled; }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  void set_clock(const SimClock* clock) { tracer_.set_clock(clock); }
  double now() const { return tracer_.now(); }

 private:
  TelemetryConfig config_;
  MetricsRegistry metrics_;
  Tracer tracer_;
};

}  // namespace lgv::telemetry
