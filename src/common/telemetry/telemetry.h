// The telemetry bundle handed to instrumented components: one metrics
// registry + one tracer sharing the virtual clock. Components hold a
// `telemetry::Telemetry*` that is nullptr when telemetry is disabled, so the
// disabled path costs exactly one pointer test on each hot path.
//
//   Telemetry t;                      // or Telemetry(config)
//   t.set_clock(&clock);              // virtual-time stamping
//   graph.set_telemetry(&t);          // component wiring
//   ...
//   t.tracer().write_chrome_json(os); // load the result in Perfetto
//   t.metrics().write_json(os);
#pragma once

#include <mutex>
#include <set>
#include <string>

#include "common/telemetry/metrics.h"
#include "common/telemetry/trace.h"

namespace lgv::telemetry {

struct TelemetryConfig {
  bool enabled = true;
  /// Tracer event cap (see Tracer).
  size_t max_trace_events = 1u << 20;
  /// Flight-recorder ring size: the always-on post-mortem window. Fixed
  /// memory, overwrite-oldest; 0 disables the ring entirely.
  size_t flight_recorder_events = 256;
  /// When non-empty, `dump_flight(trigger)` writes the retained window to
  /// `<prefix>_flight_<trigger>.jsonl`. Empty = count triggers, write nothing.
  std::string flight_dump_prefix;
  /// Optional fleet identity stamped on every metric series (as a
  /// `vehicle_id` label) and every trace event (as a `vehicle_id` arg).
  std::string vehicle_id;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config = {});

  const TelemetryConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled; }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  void set_clock(const SimClock* clock) { tracer_.set_clock(clock); }
  double now() const { return tracer_.now(); }

  /// Fire a flight-recorder trigger (e.g. "lease_expiry", "migration_abort",
  /// "integrity_reject"). The first occurrence of each trigger name bumps
  /// `flight_recorder_dumps_total{trigger=...}` and — when a dump prefix is
  /// configured — writes `<prefix>_flight_<trigger>.jsonl`; repeats are
  /// no-ops so a reject storm costs one file, not thousands. Returns true
  /// when this call newly fired the trigger (false on repeats or if the
  /// dump file could not be written).
  bool dump_flight(const std::string& trigger);

 private:
  TelemetryConfig config_;
  MetricsRegistry metrics_;
  Tracer tracer_;
  std::mutex dump_mutex_;
  std::set<std::string> dumped_triggers_;
};

}  // namespace lgv::telemetry
