#include "common/telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "common/telemetry/json_util.h"

namespace lgv::telemetry {

namespace {

// Lock-free max update for an atomic double.
void atomic_max(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_add(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

const char* kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

}  // namespace

void Gauge::set(double v) {
  value_.store(v, std::memory_order_relaxed);
  atomic_max(max_, v);
}

void Gauge::add(double delta) {
  atomic_add(value_, delta);
  atomic_max(max_, value_.load(std::memory_order_relaxed));
}

Histogram::Histogram(std::vector<double> bucket_bounds) : bounds_(std::move(bucket_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_.reserve(bounds_.size() + 1);
  for (size_t i = 0; i < bounds_.size() + 1; ++i) {
    buckets_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const size_t idx = static_cast<size_t>(it - bounds_.begin());
  buckets_[idx]->fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

double Histogram::mean() const {
  const uint64_t n = count();
  return n ? sum() / static_cast<double>(n) : 0.0;
}

uint64_t Histogram::overflow_count() const {
  return buckets_.back()->load(std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(b->load(std::memory_order_relaxed));
  return out;
}

double Histogram::quantile(double q) const {
  const std::vector<uint64_t> counts = bucket_counts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);

  const double observed_min = min_.load(std::memory_order_relaxed);
  const double observed_max = max_.load(std::memory_order_relaxed);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double next = static_cast<double>(cumulative + counts[i]);
    if (rank <= next) {
      // Linear interpolation within the bucket, clamped to the observed
      // range so sparse histograms don't report a bound nobody hit.
      double lo = i == 0 ? observed_min : bounds_[i - 1];
      double hi = i < bounds_.size() ? bounds_[i] : observed_max;
      lo = std::max(lo, observed_min);
      hi = std::min(hi, observed_max);
      if (hi <= lo) return hi;
      const double frac =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(counts[i]);
      return lo + frac * (hi - lo);
    }
    cumulative += counts[i];
  }
  return observed_max;
}

std::vector<double> duration_bounds_s() {
  return {1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
          5e-2, 0.1,    0.25, 0.5,  1.0,    2.5,  5.0};
}

std::vector<double> latency_bounds_ms() {
  return {0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
          1000.0, 2000.0};
}

std::string MetricsRegistry::series_key(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name;
  key += '{';
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i) key += ',';
    key += sorted[i].first;
    key += '=';
    key += sorted[i].second;
  }
  key += '}';
  return key;
}

void MetricsRegistry::set_default_labels(Labels labels) {
  const std::scoped_lock lock(mutex_);
  default_labels_ = std::move(labels);
}

Labels MetricsRegistry::merged_labels(const Labels& labels) const {
  const std::scoped_lock lock(mutex_);
  if (default_labels_.empty()) return labels;
  Labels merged = labels;
  for (const auto& def : default_labels_) {
    const bool overridden =
        std::any_of(labels.begin(), labels.end(),
                    [&](const auto& l) { return l.first == def.first; });
    if (!overridden) merged.push_back(def);
  }
  return merged;
}

Counter& MetricsRegistry::counter(const std::string& name, const Labels& labels) {
  const std::string key = series_key(name, merged_labels(labels));
  const std::scoped_lock lock(mutex_);
  auto [it, inserted] = series_.try_emplace(key);
  if (inserted) {
    it->second.name = name;
    it->second.kind = MetricKind::kCounter;
    it->second.counter = std::make_unique<Counter>();
  }
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  const std::string key = series_key(name, merged_labels(labels));
  const std::scoped_lock lock(mutex_);
  auto [it, inserted] = series_.try_emplace(key);
  if (inserted) {
    it->second.name = name;
    it->second.kind = MetricKind::kGauge;
    it->second.gauge = std::make_unique<Gauge>();
  }
  return *it->second.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, const Labels& labels,
                                      std::vector<double> bucket_bounds) {
  const std::string key = series_key(name, merged_labels(labels));
  const std::scoped_lock lock(mutex_);
  auto [it, inserted] = series_.try_emplace(key);
  if (inserted) {
    it->second.name = name;
    it->second.kind = MetricKind::kHistogram;
    it->second.histogram = std::make_unique<Histogram>(std::move(bucket_bounds));
  }
  return *it->second.histogram;
}

size_t MetricsRegistry::series_count() const {
  const std::scoped_lock lock(mutex_);
  return series_.size();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::scoped_lock lock(mutex_);
  MetricsSnapshot snap;
  snap.samples.reserve(series_.size());
  for (const auto& [key, entry] : series_) {
    MetricSample s;
    s.name = entry.name;
    s.key = key;
    s.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        s.value = static_cast<double>(entry.counter->value());
        break;
      case MetricKind::kGauge:
        s.value = entry.gauge->value();
        s.max = entry.gauge->max();
        break;
      case MetricKind::kHistogram:
        s.value = static_cast<double>(entry.histogram->count());
        s.sum = entry.histogram->sum();
        s.p50 = entry.histogram->quantile(0.50);
        s.p90 = entry.histogram->quantile(0.90);
        s.p99 = entry.histogram->quantile(0.99);
        s.overflow = static_cast<double>(entry.histogram->overflow_count());
        break;
    }
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  write_metrics_json(os, snapshot());
}

std::vector<std::string> MetricsSnapshot::families() const {
  std::vector<std::string> out;
  for (const MetricSample& s : samples) out.push_back(s.name);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

const MetricSample* MetricsSnapshot::find(const std::string& key) const {
  for (const MetricSample& s : samples) {
    if (s.key == key) return &s;
  }
  return nullptr;
}

void write_metrics_json(std::ostream& os, const MetricsSnapshot& snapshot) {
  os << "{\n";
  for (size_t i = 0; i < snapshot.samples.size(); ++i) {
    const MetricSample& s = snapshot.samples[i];
    os << "  \"" << json_escape(s.key) << "\": {\"family\": \"" << json_escape(s.name)
       << "\", \"kind\": \"" << kind_name(s.kind) << "\"";
    switch (s.kind) {
      case MetricKind::kCounter:
        os << ", \"value\": " << json_number(s.value);
        break;
      case MetricKind::kGauge:
        os << ", \"value\": " << json_number(s.value)
           << ", \"max\": " << json_number(s.max);
        break;
      case MetricKind::kHistogram:
        os << ", \"count\": " << json_number(s.value)
           << ", \"sum\": " << json_number(s.sum)
           << ", \"p50\": " << json_number(s.p50)
           << ", \"p90\": " << json_number(s.p90)
           << ", \"p99\": " << json_number(s.p99)
           << ", \"overflow\": " << json_number(s.overflow);
        break;
    }
    os << "}" << (i + 1 < snapshot.samples.size() ? "," : "") << "\n";
  }
  os << "}\n";
}

}  // namespace lgv::telemetry
