#include "common/telemetry/telemetry.h"

#include <fstream>

namespace lgv::telemetry {

Telemetry::Telemetry(TelemetryConfig config)
    : config_(std::move(config)),
      tracer_(config_.max_trace_events, config_.flight_recorder_events) {
  if (!config_.vehicle_id.empty()) {
    // Stamp the identity before any series registers so every key carries it.
    metrics_.set_default_labels({{"vehicle_id", config_.vehicle_id}});
    tracer_.set_vehicle_id(config_.vehicle_id);
  }
  // Registered eagerly so the family shows up (at 0) in every report, making
  // silent ring-buffer truncation visible rather than merely knowable.
  tracer_.set_dropped_counter(&metrics_.counter("telemetry_dropped_spans_total"));
}

bool Telemetry::dump_flight(const std::string& trigger) {
  {
    const std::scoped_lock lock(dump_mutex_);
    if (!dumped_triggers_.insert(trigger).second) return false;
  }
  metrics_.counter("flight_recorder_dumps_total", {{"trigger", trigger}}).inc();
  if (config_.flight_dump_prefix.empty()) return true;  // metric-only mode
  const std::string path = config_.flight_dump_prefix + "_flight_" + trigger + ".jsonl";
  std::ofstream os(path);
  if (!os) return false;
  tracer_.write_flight_jsonl(os);
  return static_cast<bool>(os);
}

}  // namespace lgv::telemetry
