// Makespan attribution over a finished mission's span DAG. Walks the trace
// events of a run (in-process, or parsed back from a `_trace.jsonl` file) and
// charges every instant of mission time to exactly one named bucket — local
// compute, serialize, uplink queue, wire, remote queue, remote compute,
// downlink, migration, fallback re-execution, pipeline idle — so "why did
// this mission take 59 s?" is a JSON field, not a Perfetto eyeballing
// session. Overlapping spans are resolved by a fixed priority order (a
// migration stall that overlaps background compute is a migration stall);
// time covered by no span at all is pipeline idle (sensor cadence waits);
// spans that match no rule land in an explicit residual bucket rather than
// disappearing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/telemetry/trace.h"

namespace lgv::telemetry {

struct CriticalPathBucket {
  std::string name;
  double seconds = 0.0;
  double fraction = 0.0;  ///< seconds / makespan (0 when makespan is 0)
  uint64_t spans = 0;     ///< 'X' spans classified into this bucket
};

struct CriticalPathResult {
  double makespan_s = 0.0;
  double residual_s = 0.0;  ///< time charged to spans matching no rule
  uint64_t spans_total = 0;  ///< 'X' spans considered
  uint64_t traces = 0;       ///< distinct trace ids seen
  uint64_t orphan_spans = 0; ///< events whose parent span id resolves to nothing
  /// Named buckets in priority order; always includes every bucket (possibly
  /// at 0 s) plus trailing "pipeline_idle" and "other" (the residual).
  std::vector<CriticalPathBucket> buckets;
  /// Convenience sums for the Fig 13 narrative.
  double network_s = 0.0;  ///< uplink_queue + wire + downlink + migration
  double compute_s = 0.0;  ///< local_compute + remote_compute + fallback

  /// Fraction of the makespan attributed to *named* buckets (everything but
  /// the residual). The acceptance bar is >= 0.95.
  double named_fraction() const;
  const CriticalPathBucket* find(const std::string& name) const;
};

/// Attribute `[0, makespan_s]` of mission time across the events. A negative
/// makespan means "derive it": the latest span end / instant seen.
CriticalPathResult attribute_critical_path(const std::vector<TraceEvent>& events,
                                           double makespan_s = -1.0);

/// Deterministic `<prefix>_critical_path.json` rendering.
void write_critical_path_json(std::ostream& os, const CriticalPathResult& result);

/// Parse events back out of the Tracer::write_jsonl format (string pid/tid
/// lanes). Lines that do not parse are skipped and counted into *skipped
/// when provided — the analyzer is a post-mortem tool and must not die on a
/// truncated tail line.
std::vector<TraceEvent> parse_trace_jsonl(std::istream& is, size_t* skipped = nullptr);

}  // namespace lgv::telemetry
