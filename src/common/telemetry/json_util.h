// Locale-independent, deterministic JSON fragment helpers shared by the
// trace and metrics writers. Everything telemetry emits must diff cleanly
// across platforms (golden tests, bench sidecars, the perf-regression gate),
// so numbers are rendered with std::to_chars — never printf, whose decimal
// separator follows the process locale.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace lgv::telemetry {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

/// Fixed-precision decimal rendering, equivalent to printf("%.*f") under the
/// C locale. Used for trace timestamps (µs with 3 decimals).
inline std::string json_fixed(double v, int precision) {
  if (std::isnan(v) || std::isinf(v)) return "0";
  char buf[64];
  const auto res =
      std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::fixed, precision);
  if (res.ec != std::errc()) return "0";
  return std::string(buf, res.ptr);
}

/// Compact numeric rendering: integers without a decimal point, everything
/// else in %.6g-shaped general form with enough digits to round-trip the
/// interesting range. Deterministic so goldens and diffs are stable.
inline std::string json_number(double v) {
  if (std::isnan(v) || std::isinf(v)) return "0";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf),
                                   static_cast<long long>(v));
    return std::string(buf, res.ptr);
  }
  char buf[64];
  const auto res =
      std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::general, 6);
  if (res.ec != std::errc()) return "0";
  return std::string(buf, res.ptr);
}

}  // namespace lgv::telemetry
