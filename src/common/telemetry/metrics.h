// Process-wide metrics registry: counters, gauges and fixed-bucket
// histograms, keyed Prometheus-style by `name{label=value,...}`. The paper's
// evaluation lives and dies on measurement (per-node times for Algorithm 1,
// bandwidth/direction for Algorithm 2) — this registry is the shared
// low-overhead surface every layer records into.
//
// Concurrency contract: registration (counter()/gauge()/histogram()) takes a
// mutex and returns a handle whose address is stable for the registry's
// lifetime; hot paths cache the handle once and then touch only atomics.
// Snapshots can be taken from any thread while writers are active.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace lgv::telemetry {

/// Label set, e.g. {{"topic", "scan"}}. Kept sorted by key inside the
/// registry so {a=1,b=2} and {b=2,a=1} name the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written instantaneous value (queue depth, in-flight bytes, ...).
/// Also tracks the high-water mark, which is what mission post-mortems
/// usually want from a depth gauge.
class Gauge {
 public:
  void set(double v);
  void add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
  std::atomic<double> max_{0.0};
};

/// Fixed-bucket histogram. Bucket `i` counts observations <= bounds[i]; one
/// implicit overflow bucket counts the rest. Quantiles are extracted by
/// linear interpolation inside the containing bucket — exact enough for
/// p50/p90/p99 reporting and allocation-free on the record path.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bucket_bounds);

  void observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  /// Observations above the top bucket bound. Exported explicitly so values
  /// past the configured range show up as a count instead of silently
  /// distorting p99 interpolation.
  uint64_t overflow_count() const;
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  /// q in [0, 1]; returns 0 when empty.
  double quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<uint64_t> bucket_counts() const;

 private:
  std::vector<double> bounds_;  ///< ascending upper bounds
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> buckets_;  ///< bounds + overflow
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Default histogram bounds for virtual-time durations in seconds
/// (100 µs .. 5 s, roughly logarithmic).
std::vector<double> duration_bounds_s();
/// Default bounds for millisecond latencies (0.1 ms .. 2 s).
std::vector<double> latency_bounds_ms();

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One exported series — the copyable form used by MissionReport and JSON.
struct MetricSample {
  std::string name;    ///< family name (no labels)
  std::string key;     ///< full series key `name{label=value}`
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;  ///< counter value / gauge value / histogram count
  double max = 0.0;    ///< gauge high-water mark
  // Histogram extraction:
  double sum = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double overflow = 0.0;  ///< observations above the top bucket bound
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// Distinct family names (sorted).
  std::vector<std::string> families() const;
  /// First sample whose series key matches exactly, nullptr if absent.
  const MetricSample* find(const std::string& key) const;
};

class MetricsRegistry {
 public:
  /// Get-or-create. The returned reference stays valid for the registry's
  /// lifetime; a histogram's bucket bounds are fixed by the first caller.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, const Labels& labels = {},
                       std::vector<double> bucket_bounds = duration_bounds_s());

  /// Full series key for `name` + `labels` (labels sorted by key).
  static std::string series_key(const std::string& name, const Labels& labels);

  /// Labels merged into every subsequently registered series (explicit labels
  /// win on key collision). Set before the first registration — e.g. the
  /// fleet `vehicle_id` — so every key in the registry carries the identity.
  void set_default_labels(Labels labels);

  MetricsSnapshot snapshot() const;
  /// Deterministic JSON object: {"series key": {...}, ...} sorted by key.
  void write_json(std::ostream& os) const;

  size_t series_count() const;

 private:
  struct Entry {
    std::string name;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// `labels` + defaults (explicit keys win), ready for series_key.
  Labels merged_labels(const Labels& labels) const;

  mutable std::mutex mutex_;
  std::map<std::string, Entry> series_;
  Labels default_labels_;
};

/// JSON rendering of a snapshot (same schema as MetricsRegistry::write_json).
void write_metrics_json(std::ostream& os, const MetricsSnapshot& snapshot);

}  // namespace lgv::telemetry
