// Span tracing against the virtual clock. Components record complete spans
// (node executions, state migrations) and instant events (Algorithm 1/2
// decisions, drops) with a track identity of (process lane, thread lane) —
// we map hosts to process lanes and nodes/components to thread lanes, so a
// mission trace opened in Perfetto / chrome://tracing shows the VDP pipeline
// as per-node rows grouped under lgv / edge_gateway / cloud_server, and an
// Algorithm 2 migration as a node's work jumping between groups.
//
// Causality: a TraceContext (trace_id + parent span) is carried across the
// middleware queues and the framed wire envelope, so every event recorded
// while a context is active becomes a node in one cross-host span DAG. A
// trace starts at the sensor tick (`begin_trace`) and is re-entered on the
// remote side when a frame carrying the context is delivered.
//
// Export formats: Chrome trace-event JSON (the `traceEvents` array schema,
// loadable by Perfetto) and a line-per-event JSONL stream for ad-hoc jq/grep
// analysis and the critical-path analyzer. Output is deterministic for a
// fixed event sequence — golden-file testable under the virtual clock.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/telemetry/metrics.h"

namespace lgv::telemetry {

/// String args attached to an event, rendered into the Chrome `args` object.
/// Values are emitted as raw JSON when they parse as a number, else quoted.
using TraceArgs = std::vector<std::pair<std::string, std::string>>;

struct TraceEvent {
  std::string name;
  char phase = 'i';    ///< 'X' complete span, 'i' instant event
  double ts_s = 0.0;   ///< virtual start time (seconds)
  double dur_s = 0.0;  ///< span duration (seconds, 'X' only)
  std::string pid;     ///< process lane (host)
  std::string tid;     ///< thread lane (node / component)
  // Causal identity; all zero when recorded outside an active trace. Emitted
  // in the JSON output only when set, so untraced output is unchanged.
  uint32_t trace_id = 0;
  uint32_t span_id = 0;
  uint32_t parent_span_id = 0;
  TraceArgs args;
};

/// Propagated causal context: the trace this execution belongs to and the
/// span it should parent under. `span_id == 0` means "root of the trace".
/// Contexts are value types — capture them into queues, frames, and deferred
/// completions; restore with ScopedTraceContext around the continuation.
struct TraceContext {
  uint32_t trace_id = 0;
  uint32_t span_id = 0;  ///< parent span for events recorded under this context

  bool active() const { return trace_id != 0; }
};

class Tracer {
 public:
  /// Events past `max_events` are dropped (and counted) so a runaway mission
  /// cannot exhaust memory; 1M events ≈ a few hundred MB of JSON, far beyond
  /// any Fig. 9–14 run. The flight recorder is a second, much smaller ring
  /// that always keeps the most recent `flight_capacity` events (overwriting
  /// the oldest) — even after the main buffer saturates — so a post-mortem
  /// dump at lease expiry / migration abort / integrity reject always has
  /// the window that matters.
  explicit Tracer(size_t max_events = 1u << 20, size_t flight_capacity = 256)
      : max_events_(max_events), flight_capacity_(flight_capacity) {}

  /// Register the virtual clock used by the convenience overloads; the
  /// explicit-timestamp API works without one.
  void set_clock(const SimClock* clock) { clock_ = clock; }
  double now() const { return clock_ != nullptr ? clock_->now() : 0.0; }

  /// Mirror every ring-buffer drop into this counter (typically
  /// `telemetry_dropped_spans_total`); nullptr disconnects.
  void set_dropped_counter(Counter* counter) { dropped_counter_ = counter; }

  /// Optional vehicle identity appended to every recorded event as a
  /// `vehicle_id` arg (fleet-scale disambiguation). Empty = off.
  void set_vehicle_id(std::string vehicle_id);

  // --- causal context ------------------------------------------------------
  // The current context is what the *mission loop* is doing right now; it is
  // saved/restored around queue drains and frame deliveries, not per thread.
  // Pool workers record spans without touching it.

  /// Start a fresh trace (new trace_id, no parent) and make it current.
  TraceContext begin_trace();
  /// Re-enter a propagated context (e.g. decoded from a wire frame).
  void set_current(TraceContext ctx);
  TraceContext current() const;

  /// Complete span [start_s, start_s + dur_s). Returns the span id assigned
  /// under the current trace (0 outside a trace); pass it to `set_current`
  /// to parent subsequent events under this span.
  uint32_t span(std::string name, std::string pid, std::string tid, double start_s,
                double dur_s, TraceArgs args = {});
  /// Instant event at t_s. Returns the assigned span id (0 outside a trace).
  uint32_t instant(std::string name, std::string pid, std::string tid, double t_s,
                   TraceArgs args = {});
  /// Instant event stamped with the registered clock's current time.
  uint32_t instant_now(std::string name, std::string pid, std::string tid,
                       TraceArgs args = {});

  size_t size() const;
  uint64_t dropped() const;
  void clear();

  /// Chrome trace-event JSON: {"traceEvents": [...]} with process/thread
  /// name metadata so Perfetto shows host/node lane names.
  void write_chrome_json(std::ostream& os) const;
  /// One event per line, same field names as the Chrome schema except that
  /// pid/tid stay strings (host / node names) — the form the critical-path
  /// analyzer and jq pipelines consume.
  void write_jsonl(std::ostream& os) const;

  /// Snapshot of the recorded events (test / analysis use).
  std::vector<TraceEvent> events() const;

  // --- flight recorder -----------------------------------------------------

  size_t flight_capacity() const { return flight_capacity_; }
  /// Events the flight ring has overwritten (its "drops"; bounded-memory
  /// operation, not data loss — the main buffer usually still has them).
  uint64_t flight_overwritten() const;
  /// The retained window, oldest first.
  std::vector<TraceEvent> flight_events() const;
  /// JSONL dump of the retained window (same schema as write_jsonl).
  void write_flight_jsonl(std::ostream& os) const;

 private:
  uint32_t record(TraceEvent e);

  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  size_t max_events_;
  uint64_t dropped_ = 0;
  const SimClock* clock_ = nullptr;
  Counter* dropped_counter_ = nullptr;
  std::string vehicle_id_;

  TraceContext current_;
  uint32_t next_trace_id_ = 0;
  uint32_t next_span_id_ = 0;

  std::vector<TraceEvent> flight_;
  size_t flight_capacity_;
  size_t flight_head_ = 0;  ///< next overwrite position once full
  uint64_t flight_overwritten_ = 0;
};

/// RAII save/restore of a tracer's current context around a continuation
/// (queue drain, deferred completion, frame delivery). A nullptr tracer makes
/// the whole thing a no-op, preserving the one-pointer-test disabled path.
class ScopedTraceContext {
 public:
  ScopedTraceContext(Tracer* tracer, TraceContext ctx) : tracer_(tracer) {
    if (tracer_ != nullptr) {
      saved_ = tracer_->current();
      tracer_->set_current(ctx);
    }
  }
  ~ScopedTraceContext() {
    if (tracer_ != nullptr) tracer_->set_current(saved_);
  }
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  Tracer* tracer_;
  TraceContext saved_;
};

}  // namespace lgv::telemetry
