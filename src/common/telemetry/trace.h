// Span tracing against the virtual clock. Components record complete spans
// (node executions, state migrations) and instant events (Algorithm 1/2
// decisions, drops) with a track identity of (process lane, thread lane) —
// we map hosts to process lanes and nodes/components to thread lanes, so a
// mission trace opened in Perfetto / chrome://tracing shows the VDP pipeline
// as per-node rows grouped under lgv / edge_gateway / cloud_server, and an
// Algorithm 2 migration as a node's work jumping between groups.
//
// Export formats: Chrome trace-event JSON (the `traceEvents` array schema,
// loadable by Perfetto) and a line-per-event JSONL stream for ad-hoc jq/grep
// analysis. Output is deterministic for a fixed event sequence — golden-file
// testable under the virtual clock.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"

namespace lgv::telemetry {

/// String args attached to an event, rendered into the Chrome `args` object.
/// Values are emitted as raw JSON when they parse as a number, else quoted.
using TraceArgs = std::vector<std::pair<std::string, std::string>>;

struct TraceEvent {
  std::string name;
  char phase = 'i';    ///< 'X' complete span, 'i' instant event
  double ts_s = 0.0;   ///< virtual start time (seconds)
  double dur_s = 0.0;  ///< span duration (seconds, 'X' only)
  std::string pid;     ///< process lane (host)
  std::string tid;     ///< thread lane (node / component)
  TraceArgs args;
};

class Tracer {
 public:
  /// Events past this many are dropped (and counted) so a runaway mission
  /// cannot exhaust memory; 1M events ≈ a few hundred MB of JSON, far beyond
  /// any Fig. 9–14 run.
  explicit Tracer(size_t max_events = 1u << 20) : max_events_(max_events) {}

  /// Register the virtual clock used by the convenience overloads; the
  /// explicit-timestamp API works without one.
  void set_clock(const SimClock* clock) { clock_ = clock; }
  double now() const { return clock_ != nullptr ? clock_->now() : 0.0; }

  /// Complete span [start_s, start_s + dur_s).
  void span(std::string name, std::string pid, std::string tid, double start_s,
            double dur_s, TraceArgs args = {});
  /// Instant event at t_s.
  void instant(std::string name, std::string pid, std::string tid, double t_s,
               TraceArgs args = {});
  /// Instant event stamped with the registered clock's current time.
  void instant_now(std::string name, std::string pid, std::string tid,
                   TraceArgs args = {});

  size_t size() const;
  uint64_t dropped() const;
  void clear();

  /// Chrome trace-event JSON: {"traceEvents": [...]} with process/thread
  /// name metadata so Perfetto shows host/node lane names.
  void write_chrome_json(std::ostream& os) const;
  /// One event per line, same field names as the Chrome schema.
  void write_jsonl(std::ostream& os) const;

  /// Snapshot of the recorded events (test / analysis use).
  std::vector<TraceEvent> events() const;

 private:
  void record(TraceEvent e);

  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  size_t max_events_;
  uint64_t dropped_ = 0;
  const SimClock* clock_ = nullptr;
};

}  // namespace lgv::telemetry
