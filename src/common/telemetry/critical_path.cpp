#include "common/telemetry/critical_path.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <set>

#include "common/telemetry/json_util.h"

namespace lgv::telemetry {

namespace {

// Bucket indices double as charge priority: when spans overlap in time, the
// lowest index wins. A migration stall that overlaps background compute is a
// migration stall; network legs beat the small always-local nodes (mux,
// safety) that tick underneath every offloaded cycle.
enum BucketIndex {
  kMigration = 0,
  kPlacement,  ///< multi-tier placement solves (the engine's search spans)
  kFallback,
  kRemoteCompute,
  kSerialize,
  kUplinkQueue,
  kWire,
  kDownlink,
  kLocalCompute,
  kOther,  ///< residual: 'X' spans matching no rule
  kBucketCount,
};

constexpr const char* kBucketNames[kBucketCount] = {
    "migration", "placement", "fallback",      "remote_compute", "serialize",
    "uplink_queue", "wire",   "downlink",      "local_compute",  "other",
};

bool has_outcome(const TraceEvent& e, const char* outcome) {
  for (const auto& [k, v] : e.args) {
    if (k == "outcome" && v == outcome) return true;
  }
  return false;
}

int classify(const TraceEvent& e) {
  if (e.phase != 'X') return -1;
  if (e.name == "switcher.migrate") return kMigration;
  if (e.name == "placement.solve") return kPlacement;
  if (has_outcome(e, "fallback") || has_outcome(e, "lease_expired")) return kFallback;
  if (e.name == "net.queue") return e.tid == "downlink" ? kDownlink : kUplinkQueue;
  if (e.name == "net.wire") return e.tid == "downlink" ? kDownlink : kWire;
  if (e.name == "mw.serialize") return kSerialize;
  if (e.pid == "edge_gateway" || e.pid == "cloud_server") return kRemoteCompute;
  if (e.pid == "lgv") return kLocalCompute;
  return kOther;
}

}  // namespace

double CriticalPathResult::named_fraction() const {
  if (makespan_s <= 0.0) return 1.0;
  return (makespan_s - residual_s) / makespan_s;
}

const CriticalPathBucket* CriticalPathResult::find(const std::string& name) const {
  for (const CriticalPathBucket& b : buckets) {
    if (b.name == name) return &b;
  }
  return nullptr;
}

CriticalPathResult attribute_critical_path(const std::vector<TraceEvent>& events,
                                           double makespan_s) {
  CriticalPathResult result;

  double derived_end = 0.0;
  std::set<uint32_t> trace_ids;
  std::set<uint32_t> span_ids;
  for (const TraceEvent& e : events) {
    derived_end = std::max(derived_end, e.phase == 'X' ? e.ts_s + e.dur_s : e.ts_s);
    if (e.trace_id != 0) trace_ids.insert(e.trace_id);
    if (e.span_id != 0) span_ids.insert(e.span_id);
  }
  const double T = makespan_s >= 0.0 ? makespan_s : derived_end;
  result.makespan_s = T;
  result.traces = trace_ids.size();
  for (const TraceEvent& e : events) {
    if (e.parent_span_id != 0 && span_ids.find(e.parent_span_id) == span_ids.end()) {
      ++result.orphan_spans;
    }
  }

  // Sweep line: +1/-1 per bucket at each span boundary; between boundaries
  // the segment is charged to the highest-priority active bucket, or idle.
  struct Edge {
    double t;
    int bucket;
    int delta;
  };
  std::vector<Edge> edges;
  uint64_t bucket_spans[kBucketCount] = {};
  for (const TraceEvent& e : events) {
    const int b = classify(e);
    if (b < 0) continue;
    ++result.spans_total;
    const double lo = std::max(0.0, e.ts_s);
    const double hi = std::min(T, e.ts_s + std::max(0.0, e.dur_s));
    ++bucket_spans[b];
    if (hi <= lo) continue;
    edges.push_back({lo, b, +1});
    edges.push_back({hi, b, -1});
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.delta < b.delta;  // close before open at identical times
  });

  double bucket_seconds[kBucketCount] = {};
  double idle_s = 0.0;
  int active[kBucketCount] = {};
  double prev = 0.0;
  size_t i = 0;
  auto charge = [&](double from, double to) {
    if (to <= from) return;
    for (int b = 0; b < kBucketCount; ++b) {
      if (active[b] > 0) {
        bucket_seconds[b] += to - from;
        return;
      }
    }
    idle_s += to - from;
  };
  while (i < edges.size()) {
    const double t = std::min(edges[i].t, T);
    charge(prev, t);
    prev = t;
    while (i < edges.size() && edges[i].t == t) {
      active[edges[i].bucket] += edges[i].delta;
      ++i;
    }
    if (t >= T) break;
  }
  charge(prev, T);

  for (int b = 0; b < kBucketCount; ++b) {
    CriticalPathBucket out;
    out.name = kBucketNames[b];
    out.seconds = bucket_seconds[b];
    out.fraction = T > 0.0 ? bucket_seconds[b] / T : 0.0;
    out.spans = bucket_spans[b];
    result.buckets.push_back(std::move(out));
  }
  CriticalPathBucket idle;
  idle.name = "pipeline_idle";
  idle.seconds = idle_s;
  idle.fraction = T > 0.0 ? idle_s / T : 0.0;
  result.buckets.push_back(std::move(idle));

  result.residual_s = bucket_seconds[kOther];
  result.network_s = bucket_seconds[kUplinkQueue] + bucket_seconds[kWire] +
                     bucket_seconds[kDownlink] + bucket_seconds[kMigration];
  result.compute_s = bucket_seconds[kLocalCompute] + bucket_seconds[kRemoteCompute] +
                     bucket_seconds[kFallback];
  return result;
}

void write_critical_path_json(std::ostream& os, const CriticalPathResult& r) {
  os << "{\n";
  os << "  \"schema\": \"critical_path/1\",\n";
  os << "  \"makespan_s\": " << json_number(r.makespan_s) << ",\n";
  os << "  \"spans\": " << r.spans_total << ",\n";
  os << "  \"traces\": " << r.traces << ",\n";
  os << "  \"orphan_spans\": " << r.orphan_spans << ",\n";
  os << "  \"named_fraction\": " << json_number(r.named_fraction()) << ",\n";
  os << "  \"residual_s\": " << json_number(r.residual_s) << ",\n";
  os << "  \"network_s\": " << json_number(r.network_s) << ",\n";
  os << "  \"compute_s\": " << json_number(r.compute_s) << ",\n";
  os << "  \"buckets\": {\n";
  for (size_t i = 0; i < r.buckets.size(); ++i) {
    const CriticalPathBucket& b = r.buckets[i];
    os << "    \"" << json_escape(b.name) << "\": {\"seconds\": "
       << json_number(b.seconds) << ", \"fraction\": " << json_number(b.fraction)
       << ", \"spans\": " << b.spans << "}"
       << (i + 1 < r.buckets.size() ? "," : "") << "\n";
  }
  os << "  }\n}\n";
}

namespace {

/// Parse a JSON string at s[i] == '"'; leaves i one past the closing quote.
bool parse_quoted(const std::string& s, size_t& i, std::string* out) {
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  out->clear();
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 'n': *out += '\n'; break;
        case 't': *out += '\t'; break;
        default: *out += s[i];
      }
    } else {
      *out += s[i];
    }
    ++i;
  }
  if (i >= s.size()) return false;
  ++i;
  return true;
}

/// Bare token (number / true / false) up to the next ',' or '}'.
void parse_bare(const std::string& s, size_t& i, std::string* out) {
  const size_t start = i;
  while (i < s.size() && s[i] != ',' && s[i] != '}') ++i;
  *out = s.substr(start, i - start);
}

bool parse_line(const std::string& s, TraceEvent* e) {
  size_t i = 0;
  if (i >= s.size() || s[i] != '{') return false;
  ++i;
  while (i < s.size() && s[i] != '}') {
    if (s[i] == ',') {
      ++i;
      continue;
    }
    std::string key;
    if (!parse_quoted(s, i, &key)) return false;
    if (i >= s.size() || s[i] != ':') return false;
    ++i;
    if (key == "args") {
      if (i >= s.size() || s[i] != '{') return false;
      ++i;
      while (i < s.size() && s[i] != '}') {
        if (s[i] == ',') {
          ++i;
          continue;
        }
        std::string ak, av;
        if (!parse_quoted(s, i, &ak)) return false;
        if (i >= s.size() || s[i] != ':') return false;
        ++i;
        if (i < s.size() && s[i] == '"') {
          if (!parse_quoted(s, i, &av)) return false;
        } else {
          parse_bare(s, i, &av);
        }
        e->args.emplace_back(std::move(ak), std::move(av));
      }
      if (i >= s.size()) return false;
      ++i;  // args '}'
    } else {
      std::string val;
      if (i < s.size() && s[i] == '"') {
        if (!parse_quoted(s, i, &val)) return false;
      } else {
        parse_bare(s, i, &val);
      }
      if (key == "name") e->name = val;
      else if (key == "ph") e->phase = val.empty() ? 'i' : val[0];
      else if (key == "ts") e->ts_s = std::strtod(val.c_str(), nullptr) / 1e6;
      else if (key == "dur") e->dur_s = std::strtod(val.c_str(), nullptr) / 1e6;
      else if (key == "pid") e->pid = val;
      else if (key == "tid") e->tid = val;
      else if (key == "trace_id")
        e->trace_id = static_cast<uint32_t>(std::strtoul(val.c_str(), nullptr, 10));
      else if (key == "span_id")
        e->span_id = static_cast<uint32_t>(std::strtoul(val.c_str(), nullptr, 10));
      else if (key == "parent_span_id")
        e->parent_span_id =
            static_cast<uint32_t>(std::strtoul(val.c_str(), nullptr, 10));
      // "s" (instant scope) and unknown keys: ignored.
    }
  }
  return i < s.size() && !e->name.empty();
}

}  // namespace

std::vector<TraceEvent> parse_trace_jsonl(std::istream& is, size_t* skipped) {
  std::vector<TraceEvent> out;
  size_t bad = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    TraceEvent e;
    if (parse_line(line, &e)) {
      out.push_back(std::move(e));
    } else {
      ++bad;
    }
  }
  if (skipped != nullptr) *skipped = bad;
  return out;
}

}  // namespace lgv::telemetry
