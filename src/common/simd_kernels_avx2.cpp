// AVX2 instantiation of the scanMatch kernels. This TU is compiled with
// -mavx2 -mfma -ffp-contract=off (see CMakeLists.txt) and is only on the
// build when LGV_ENABLE_AVX2 is set; runtime dispatch never calls into it
// unless CPUID reports avx2+fma.
#include "common/simd_vec.h"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__AVX2__)

#include "common/simd_kernels_impl.h"

namespace lgv::simd::detail {

void transform_project_avx2(const TransformProjectArgs& args) {
  transform_project_impl<VecAVX2>(args);
}

double score_hits_avx2(const ScoreHitsArgs& args) {
  return score_hits_impl<VecAVX2>(args);
}

void exp_array_avx2(const double* x, double* out, size_t n) {
  exp_array_impl<VecAVX2>(x, out, n);
}

}  // namespace lgv::simd::detail

#endif
