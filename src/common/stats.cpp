#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace lgv {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = (p / 100.0) * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

void TimeWindow::add(double t, double value) {
  entries_.emplace_back(t, value);
  expire(t);
}

void TimeWindow::expire(double t) {
  while (!entries_.empty() && entries_.front().first < t - horizon_) {
    entries_.pop_front();
  }
}

double TimeWindow::sum() const {
  double s = 0.0;
  for (const auto& [t, v] : entries_) s += v;
  return s;
}

double TimeWindow::mean() const {
  return entries_.empty() ? 0.0 : sum() / static_cast<double>(entries_.size());
}

double TimeWindow::rate(double t) {
  expire(t);
  return static_cast<double>(entries_.size()) / horizon_;
}

}  // namespace lgv
