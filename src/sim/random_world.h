// Seeded random environment generation: cluttered arenas for robustness
// sweeps (navigation should succeed across many layouts, not just the
// hand-built scenarios).
#pragma once

#include "sim/scenario.h"

namespace lgv::sim {

struct RandomWorldConfig {
  double width_m = 10.0;
  double height_m = 10.0;
  int disc_obstacles = 5;
  int box_obstacles = 3;
  double min_obstacle_radius = 0.2;
  double max_obstacle_radius = 0.45;
  /// Keep a clear disc of this radius around the start and goal.
  double keep_out_radius = 1.0;
};

/// Generate a cluttered arena with a guaranteed-free start (near one corner)
/// and goal (near the opposite corner). Obstacles never touch the keep-out
/// zones, so the mission is always *plausible*; whether a path exists through
/// the clutter is up to the planner (the generator retries placements that
/// would seal off the direct corridor entirely).
Scenario make_random_scenario(uint64_t seed, RandomWorldConfig config = {});

}  // namespace lgv::sim
