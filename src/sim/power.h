// Per-component power and energy models of §III-A:
//   Eq. 1a  E_total = E_ec + E_m + E_trans (+ sensors & microcontroller)
//   Eq. 1b  E_trans = P_trans · D_trans / R_uplink
//   Eq. 1c  P_c^n(t) = k · L_{n,t} · f_t²          (embedded computer)
//   Eq. 1d  P_m(t) = P_l + m(a + gμ)v              (motors)
// Component budget constants come from Table I.
#pragma once

#include <string>

#include "platform/calibration.h"

namespace lgv::sim {

/// Table I: maximum power consumption per component (W).
struct ComponentBudget {
  std::string lgv_name;
  double sensor_w = 0.0;
  double motor_w = 0.0;
  double microcontroller_w = 0.0;
  double embedded_computer_w = 0.0;

  double total() const {
    return sensor_w + motor_w + microcontroller_w + embedded_computer_w;
  }
};

ComponentBudget turtlebot2_budget();
ComponentBudget turtlebot3_budget();
ComponentBudget pioneer3dx_budget();

/// Instantaneous per-component power draw (W).
struct PowerDraw {
  double sensor = 0.0;
  double motor = 0.0;
  double microcontroller = 0.0;
  double computer = 0.0;
  double wireless = 0.0;

  double total() const { return sensor + motor + microcontroller + computer + wireless; }
};

/// Integrated per-component energy (J).
struct EnergyBreakdown {
  double sensor = 0.0;
  double motor = 0.0;
  double microcontroller = 0.0;
  double computer = 0.0;
  double wireless = 0.0;

  double total() const { return sensor + motor + microcontroller + computer + wireless; }
};

struct PowerModelConfig {
  double sensor_w = 1.0;           ///< Table I, Turtlebot3 LDS
  double microcontroller_w = 1.0;  ///< Table I, OpenCR board
  double mass_kg = platform::calib::kRobotMassKg;
  double friction = platform::calib::kGroundFriction;
  double transforming_loss_w = platform::calib::kTransformingLossW;
  double computer_idle_w = platform::calib::kEmbeddedIdlePowerW;
  double transmit_power_w = platform::calib::kTransmitPowerW;
};

class PowerModel {
 public:
  explicit PowerModel(PowerModelConfig config = {}) : config_(config) {}

  const PowerModelConfig& config() const { return config_; }

  /// Eq. 1d: motor power at velocity v (m/s) and acceleration a (m/s²).
  /// Zero when parked (drivers de-energize the coils).
  double motor_power(double v, double a) const;

  /// Eq. 1c: embedded computer power given the current useful cycle rate
  /// (cycles/s) at clock f (GHz), plus the idle floor.
  double computer_power(double cycles_per_sec, double freq_ghz) const;

  /// Eq. 1b: energy to transmit `bytes` at uplink rate `uplink_bps`.
  double transmission_energy(double bytes, double uplink_bps) const;

  double sensor_power() const { return config_.sensor_w; }
  double microcontroller_power() const { return config_.microcontroller_w; }

 private:
  PowerModelConfig config_;
};

/// Integrates PowerDraw over virtual time into the Fig. 13 stacked breakdown.
class EnergyMeter {
 public:
  void accumulate(const PowerDraw& draw, double dt);
  /// Directly add transmission energy (computed per message via Eq. 1b).
  void add_wireless_energy(double joules) { energy_.wireless += joules; }
  /// Directly add embedded-computer dynamic energy (Eq. 1c per execution).
  void add_computer_energy(double joules) { energy_.computer += joules; }

  const EnergyBreakdown& energy() const { return energy_; }
  void reset() { energy_ = {}; }

 private:
  EnergyBreakdown energy_;
};

/// The LGV's battery (19.98 Wh lithium polymer on a Turtlebot3).
class Battery {
 public:
  explicit Battery(double capacity_wh = 19.98) : capacity_j_(capacity_wh * 3600.0) {}

  void drain(double joules) { used_j_ += joules; }
  double capacity_j() const { return capacity_j_; }
  double used_j() const { return used_j_; }
  double remaining_j() const { return capacity_j_ - used_j_; }
  double state_of_charge() const { return remaining_j() / capacity_j_; }
  bool depleted() const { return used_j_ >= capacity_j_; }

 private:
  double capacity_j_;
  double used_j_ = 0.0;
};

}  // namespace lgv::sim
