// 360° laser distance sensor (Turtlebot3's LDS-01) simulated by ray-casting
// the world. Produces the LaserScan messages the perception stage consumes.
#pragma once

#include "common/rng.h"
#include "msg/messages.h"
#include "sim/world.h"

namespace lgv::sim {

struct LidarConfig {
  int beams = 360;
  double fov_rad = 2.0 * 3.14159265358979323846;  ///< full revolution
  double min_range = 0.12;   ///< LDS-01 datasheet
  double max_range = 3.5;
  double range_noise_sigma = 0.01;  ///< 1 cm gaussian range noise
  double rate_hz = 5.0;             ///< scan publication rate
};

class Lidar {
 public:
  explicit Lidar(LidarConfig config = {}, uint64_t seed = 0x11da5)
      : config_(config), rng_(seed) {}

  const LidarConfig& config() const { return config_; }

  /// One sweep from `pose` in `world` at virtual time `stamp`.
  msg::LaserScan scan(const World& world, const Pose2D& pose, double stamp);

 private:
  LidarConfig config_;
  Rng rng_;
};

}  // namespace lgv::sim
