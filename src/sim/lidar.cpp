#include "sim/lidar.h"

#include <algorithm>

namespace lgv::sim {

msg::LaserScan Lidar::scan(const World& world, const Pose2D& pose, double stamp) {
  msg::LaserScan s;
  s.header.stamp = stamp;
  s.header.frame_id = "base_scan";
  s.angle_min = -config_.fov_rad / 2.0;
  s.angle_max = config_.fov_rad / 2.0;
  s.angle_increment = config_.fov_rad / static_cast<double>(config_.beams);
  s.range_min = config_.min_range;
  s.range_max = config_.max_range;
  s.ranges.resize(static_cast<size_t>(config_.beams));
  for (int i = 0; i < config_.beams; ++i) {
    const double beam_angle = pose.theta + s.angle_min + s.angle_increment * i;
    double r = world.raycast(pose.position(), beam_angle, config_.max_range);
    if (r < config_.max_range) {
      r += rng_.gaussian(0.0, config_.range_noise_sigma);
      r = std::clamp(r, config_.min_range, config_.max_range);
      s.ranges[static_cast<size_t>(i)] = static_cast<float>(r);
    } else {
      // No return: encode as just beyond max_range, consumers treat as free.
      s.ranges[static_cast<size_t>(i)] = static_cast<float>(config_.max_range + 1.0);
    }
  }
  return s;
}

}  // namespace lgv::sim
