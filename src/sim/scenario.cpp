#include "sim/scenario.h"

#include <cmath>

#include "common/rng.h"

namespace lgv::sim {

Scenario make_lab_scenario() {
  Scenario s{World(12.0, 10.0), Pose2D(1.5, 1.5, 0.0), Pose2D(10.5, 8.5, 0.0),
             Point2D(1.0, 1.0), {}};
  World& w = s.world;
  w.add_outer_walls(0.15);
  // Two interior walls with door gaps, splitting the lab into three bays.
  w.add_wall({4.0, 0.0}, {4.0, 6.5});
  w.add_wall({8.0, 10.0}, {8.0, 3.5});
  // Furniture.
  w.add_box({1.8, 6.0}, {2.8, 7.0});
  w.add_box({5.5, 1.0}, {6.5, 2.0});
  w.add_box({5.0, 7.5}, {6.0, 8.5});
  w.add_disc({9.5, 2.0}, 0.4);
  w.add_disc({2.5, 4.0}, 0.35);
  s.waypoints = {{1.5, 1.5}, {1.2, 5.0}, {1.2, 8.5}, {3.3, 8.8},
                 {6.3, 9.2}, {6.8, 5.0}, {7.3, 1.2}, {9.8, 1.2},
                 {10.8, 5.0}, {10.5, 8.5}};
  return s;
}

Scenario make_office_scenario() {
  Scenario s{World(20.0, 14.0), Pose2D(1.2, 1.2, 0.0), Pose2D(18.5, 12.5, 0.0),
             Point2D(1.0, 1.0), {}};
  World& w = s.world;
  w.add_outer_walls(0.15);
  // Central corridor along y ≈ 7 with offices on both sides.
  for (int i = 0; i < 4; ++i) {
    const double x = 3.0 + 4.0 * i;
    // Lower office walls (door gap near corridor).
    w.add_wall({x, 0.0}, {x, 5.0});
    // Upper office walls.
    w.add_wall({x, 14.0}, {x, 9.0});
  }
  // Corridor walls with door gaps every office.
  for (int i = 0; i < 5; ++i) {
    const double x0 = 0.0 + 4.0 * i;
    w.add_wall({x0, 6.0}, {x0 + 2.6, 6.0});
    w.add_wall({x0, 8.0}, {x0 + 2.6, 8.0});
  }
  // Clutter inside offices.
  w.add_box({1.0, 3.0}, {1.8, 4.0});
  w.add_box({5.2, 10.5}, {6.2, 11.5});
  w.add_box({9.0, 2.0}, {10.0, 2.8});
  w.add_box({13.5, 11.0}, {14.5, 12.0});
  w.add_disc({17.0, 3.0}, 0.45);
  // Tour through the door gaps: corridor-wall openings sit at
  // x ∈ [2.6,4] ∪ [6.6,8] ∪ [10.6,12] ∪ [14.6,16] ∪ [18.6,20] on the y=6 and
  // y=8 walls; the y∈(5,6) and y∈(8,9) strips are open across the floor.
  s.waypoints = {{1.2, 1.2},  {2.3, 2.0},  {2.3, 5.5},  {3.2, 5.5},
                 {3.2, 7.0},  {7.0, 7.0},  {7.3, 8.5},  {9.0, 8.5},
                 {9.0, 11.0}, {9.0, 8.5},  {10.8, 8.5}, {10.8, 7.0},
                 {11.5, 7.0}, {11.5, 5.5}, {13.5, 5.5}, {13.5, 2.5},
                 {13.5, 5.5}, {15.5, 5.5}, {15.5, 7.0}, {18.9, 7.2},
                 {18.9, 8.6}, {18.5, 12.5}};
  return s;
}

Scenario make_obstacle_course_scenario() {
  Scenario s{World(16.0, 8.0), Pose2D(1.0, 4.0, 0.0), Pose2D(14.5, 1.0, 0.0),
             Point2D(1.0, 4.0), {}};
  World& w = s.world;
  w.add_outer_walls(0.15);
  // Phase 1 (x in [1, 6]): obstacle field.
  w.add_disc({2.5, 3.2}, 0.35);
  w.add_disc({3.5, 5.0}, 0.35);
  w.add_disc({4.6, 3.6}, 0.35);
  w.add_disc({5.4, 5.2}, 0.3);
  w.add_box({3.0, 1.2}, {3.6, 1.8});
  // Phase 2 (x in [6, 13]): clear straight corridor.
  w.add_wall({6.0, 6.2}, {13.0, 6.2});
  w.add_wall({6.0, 2.2}, {13.0, 2.2});
  // Phase 3: right turn at the end of the corridor.
  w.add_wall({13.0, 6.2}, {15.2, 6.2});
  w.add_wall({13.0, 2.2}, {13.0, 2.6});
  s.waypoints = {{1.0, 4.0}, {6.0, 4.2}, {13.0, 4.2}, {14.5, 1.0}};
  return s;
}

Scenario make_open_scenario() {
  Scenario s{World(8.0, 8.0), Pose2D(1.0, 1.0, 0.0), Pose2D(7.0, 7.0, 0.0),
             Point2D(0.5, 0.5), {}};
  World& w = s.world;
  w.add_outer_walls(0.15);
  w.add_disc({4.0, 4.0}, 0.4);
  w.add_disc({2.5, 5.5}, 0.3);
  w.add_disc({5.5, 2.5}, 0.3);
  s.waypoints = {{1.0, 1.0}, {1.0, 7.0}, {7.0, 7.0}, {7.0, 1.0}};
  return s;
}

Scenario make_chaos_scenario() {
  // WAP at the room center: max distance to any reachable point is ~7.5 m,
  // well inside the clean-SNR radius, so scripted faults are the only source
  // of network trouble. A few obstacles keep the VDP honestly loaded.
  Scenario s{World(14.0, 9.0), Pose2D(1.2, 1.2, 0.0), Pose2D(12.8, 7.8, 0.0),
             Point2D(7.0, 4.5), {}};
  World& w = s.world;
  w.add_outer_walls(0.15);
  w.add_wall({5.0, 0.0}, {5.0, 5.5});
  w.add_wall({9.0, 9.0}, {9.0, 3.5});
  w.add_box({2.5, 5.5}, {3.5, 6.5});
  w.add_box({10.5, 1.5}, {11.5, 2.5});
  w.add_disc({7.0, 2.0}, 0.35);
  s.waypoints = {{1.2, 1.2}, {3.0, 4.0}, {6.5, 6.5}, {9.8, 1.8}, {12.8, 7.8}};
  return s;
}

Scenario make_fleet_scenario(int vehicle_index, int fleet_size) {
  // One shared 16×10 m hall; vehicle i runs its own north–south lane, west to
  // east across the fleet, wrapping when the fleet outgrows the lane count.
  // The WAP sits at the hall center so every lane has comparable (healthy)
  // link geometry and fleet results isolate *worker* contention.
  Scenario s{World(16.0, 10.0), Pose2D(), Pose2D(), Point2D(8.0, 5.0), {}};
  World& w = s.world;
  w.add_outer_walls(0.15);
  // Sparse fixed obstacles shared by every vehicle: enough to keep costmap
  // generation and rollout honestly loaded, placed between lanes.
  w.add_box({3.9, 4.4}, {4.5, 5.6});
  w.add_box({7.7, 1.6}, {8.3, 2.6});
  w.add_box({7.7, 7.4}, {8.3, 8.4});
  w.add_box({11.5, 4.4}, {12.1, 5.6});
  w.add_disc({5.8, 7.2}, 0.3);
  w.add_disc({10.2, 2.8}, 0.3);

  // Lane count is fixed by the hall width, not the fleet: a 200-vehicle
  // fleet wraps onto the same 10 lanes rather than shrinking them.
  constexpr int kLanes = 10;
  (void)fleet_size;
  const int lane = ((vehicle_index % kLanes) + kLanes) % kLanes;
  const double x = 1.4 + 1.46 * lane;  // lane centers across [1.4, 14.6]
  // Alternate direction per vehicle so opposing lanes exist even in small
  // fleets; vehicles beyond kLanes share a lane but start from the far end.
  const bool northbound = ((vehicle_index / kLanes) + vehicle_index) % 2 == 0;
  const double y0 = northbound ? 1.2 : 8.8;
  const double y1 = northbound ? 8.8 : 1.2;
  s.start = Pose2D(x, y0, northbound ? 1.5707963267948966 : -1.5707963267948966);
  s.goal = Pose2D(x, y1, 0.0);
  s.waypoints = {{x, y0}, {x, (y0 + y1) / 2.0}, {x, y1}};
  return s;
}

std::vector<ScanLogEntry> record_scan_log(const Scenario& scenario, double speed,
                                          double scan_period, size_t max_scans,
                                          uint64_t seed) {
  std::vector<ScanLogEntry> log;
  log.reserve(max_scans);
  Lidar lidar({}, seed ^ 0x51dab);
  Rng rng(seed);

  Pose2D truth = scenario.start;
  Pose2D odom = truth;
  double stamp = 0.0;
  const double step = speed * scan_period;

  for (size_t wp = 1; wp < scenario.waypoints.size() && log.size() < max_scans; ++wp) {
    const Point2D target = scenario.waypoints[wp];
    while (log.size() < max_scans) {
      const Point2D to_target = target - truth.position();
      const double dist = to_target.norm();
      if (dist < step) break;
      const double heading = std::atan2(to_target.y, to_target.x);
      truth = Pose2D(truth.x + std::cos(heading) * step,
                     truth.y + std::sin(heading) * step, heading);
      // Odometry drifts: small bias + noise per step.
      const double dth = rng.gaussian(0.0, 0.004) + 0.0015;
      odom = Pose2D(odom.x + std::cos(odom.theta + dth) * (step + rng.gaussian(0.0, 0.004)),
                    odom.y + std::sin(odom.theta + dth) * (step + rng.gaussian(0.0, 0.004)),
                    normalize_angle(heading + dth * static_cast<double>(log.size() + 1) * 0.02));
      stamp += scan_period;
      ScanLogEntry e;
      e.true_pose = truth;
      e.odom_pose = odom;
      e.scan = lidar.scan(scenario.world, truth, stamp);
      log.push_back(std::move(e));
    }
  }
  return log;
}

}  // namespace lgv::sim
