#include "sim/power.h"

#include <algorithm>
#include <cmath>

namespace lgv::sim {

ComponentBudget turtlebot2_budget() {
  return {"Turtlebot2", 2.5, 9.0, 4.6, 15.0};
}

ComponentBudget turtlebot3_budget() {
  return {"Turtlebot3", 1.0, 6.7, 1.0, 6.5};
}

ComponentBudget pioneer3dx_budget() {
  return {"Pioneer 3DX", 0.82, 10.6, 4.6, 15.0};
}

double PowerModel::motor_power(double v, double a) const {
  v = std::abs(v);
  if (v < 1e-4) return 0.0;
  const double traction =
      config_.mass_kg * (std::max(0.0, a) + platform::calib::kGravity * config_.friction);
  return config_.transforming_loss_w + traction * v;
}

double PowerModel::computer_power(double cycles_per_sec, double freq_ghz) const {
  return config_.computer_idle_w +
         platform::calib::kSwitchedCapacitance * cycles_per_sec * freq_ghz * freq_ghz;
}

double PowerModel::transmission_energy(double bytes, double uplink_bps) const {
  if (uplink_bps <= 0.0) return 0.0;
  const double t = bytes * 8.0 / uplink_bps;
  return config_.transmit_power_w * t;
}

void EnergyMeter::accumulate(const PowerDraw& draw, double dt) {
  energy_.sensor += draw.sensor * dt;
  energy_.motor += draw.motor * dt;
  energy_.microcontroller += draw.microcontroller * dt;
  energy_.computer += draw.computer * dt;
  energy_.wireless += draw.wireless * dt;
}

}  // namespace lgv::sim
