#include "sim/random_world.h"

#include <algorithm>

#include "common/rng.h"

namespace lgv::sim {

Scenario make_random_scenario(uint64_t seed, RandomWorldConfig config) {
  Rng rng(seed);
  Scenario s{World(config.width_m, config.height_m),
             Pose2D(1.0, 1.0, 0.0),
             Pose2D(config.width_m - 1.0, config.height_m - 1.0, 0.0),
             Point2D(0.8, 0.8),
             {}};
  s.world.add_outer_walls(0.15);

  auto clear_of_endpoints = [&](const Point2D& p, double radius) {
    return distance(p, s.start.position()) > config.keep_out_radius + radius &&
           distance(p, s.goal.position()) > config.keep_out_radius + radius;
  };

  int placed_discs = 0, attempts = 0;
  while (placed_discs < config.disc_obstacles && attempts < 200) {
    ++attempts;
    const Point2D c{rng.uniform(0.8, config.width_m - 0.8),
                    rng.uniform(0.8, config.height_m - 0.8)};
    const double r =
        rng.uniform(config.min_obstacle_radius, config.max_obstacle_radius);
    if (!clear_of_endpoints(c, r)) continue;
    s.world.add_disc(c, r);
    ++placed_discs;
  }

  int placed_boxes = 0;
  attempts = 0;
  while (placed_boxes < config.box_obstacles && attempts < 200) {
    ++attempts;
    const Point2D c{rng.uniform(1.0, config.width_m - 1.0),
                    rng.uniform(1.0, config.height_m - 1.0)};
    const double hw = rng.uniform(0.2, 0.5);
    const double hh = rng.uniform(0.2, 0.5);
    if (!clear_of_endpoints(c, std::max(hw, hh))) continue;
    s.world.add_box({c.x - hw, c.y - hh}, {c.x + hw, c.y + hh});
    ++placed_boxes;
  }

  // A simple scripted tour for scan-log generation: the four quadrants.
  s.waypoints = {s.start.position(),
                 {config.width_m - 1.2, 1.2},
                 {config.width_m - 1.2, config.height_m - 1.2},
                 {1.2, config.height_m - 1.2}};
  return s;
}

}  // namespace lgv::sim
