#include "sim/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/rng.h"

namespace lgv::sim {

namespace {

constexpr struct {
  FaultKind kind;
  const char* name;
} kKindNames[] = {
    {FaultKind::kOutage, "outage"},
    {FaultKind::kLossBurst, "loss_burst"},
    {FaultKind::kLatencyInflation, "latency"},
    {FaultKind::kRssiCliff, "rssi_cliff"},
    {FaultKind::kWorkerStall, "worker_stall"},
    {FaultKind::kWorkerCrash, "worker_crash"},
    {FaultKind::kCorruptBurst, "corrupt_burst"},
    {FaultKind::kTruncate, "truncate"},
    {FaultKind::kDuplicate, "duplicate"},
    {FaultKind::kReorder, "reorder"},
    {FaultKind::kPoolCrash, "pool_crash"},
    {FaultKind::kPoolDegrade, "pool_degrade"},
    {FaultKind::kPoolPartition, "pool_partition"},
};

bool is_worker_fault(FaultKind kind) {
  return kind == FaultKind::kWorkerStall || kind == FaultKind::kWorkerCrash;
}

bool is_pool_crash(FaultKind kind) { return kind == FaultKind::kPoolCrash; }

/// Collect the [start, end) windows of the matching events, merged and sorted.
std::vector<std::pair<double, double>> merged_windows(
    const FaultSchedule& schedule, bool (*match)(FaultKind)) {
  std::vector<std::pair<double, double>> w;
  for (const FaultEvent& e : schedule.events) {
    if (match(e.kind) && e.duration > 0.0) w.emplace_back(e.start, e.end());
  }
  std::sort(w.begin(), w.end());
  std::vector<std::pair<double, double>> merged;
  for (const auto& [s, e] : w) {
    if (!merged.empty() && s <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, e);
    } else {
      merged.emplace_back(s, e);
    }
  }
  return merged;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  for (const auto& entry : kKindNames) {
    if (entry.kind == kind) return entry.name;
  }
  return "unknown";
}

std::optional<FaultKind> fault_kind_from_name(std::string_view name) {
  for (const auto& entry : kKindNames) {
    if (name == entry.name) return entry.kind;
  }
  return std::nullopt;
}

double FaultSchedule::horizon() const {
  double h = 0.0;
  for (const FaultEvent& e : events) h = std::max(h, e.end());
  return h;
}

FaultSchedule parse_fault_schedule(const std::string& text) {
  FaultSchedule schedule;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string kind_name;
    if (!(fields >> kind_name)) continue;  // blank / comment-only line
    const auto kind = fault_kind_from_name(kind_name);
    if (!kind.has_value()) {
      throw std::invalid_argument("fault schedule line " + std::to_string(line_no) +
                                  ": unknown kind '" + kind_name + "'");
    }
    FaultEvent e;
    e.kind = *kind;
    if (!(fields >> e.start >> e.duration)) {
      throw std::invalid_argument("fault schedule line " + std::to_string(line_no) +
                                  ": expected '<kind> <start> <duration> [magnitude]'");
    }
    fields >> e.magnitude;  // optional
    schedule.events.push_back(e);
  }
  return schedule;
}

std::string format_fault_schedule(const FaultSchedule& schedule) {
  std::ostringstream out;
  for (const FaultEvent& e : schedule.events) {
    out << fault_kind_name(e.kind) << ' ' << e.start << ' ' << e.duration;
    if (e.magnitude != 0.0) out << ' ' << e.magnitude;
    out << '\n';
  }
  return out.str();
}

FaultInjector::FaultInjector(FaultSchedule schedule)
    : schedule_(std::move(schedule)),
      worker_down_(merged_windows(schedule_, is_worker_fault)),
      outage_windows_(merged_windows(
          schedule_, +[](FaultKind k) { return k == FaultKind::kOutage; })),
      pool_down_(merged_windows(schedule_, is_pool_crash)),
      activated_(schedule_.events.size(), false) {}

void FaultInjector::set_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry != nullptr && telemetry->enabled() ? telemetry : nullptr;
}

net::ChannelOverride FaultInjector::override_at(double t) const {
  net::ChannelOverride o;
  for (const FaultEvent& e : schedule_.events) {
    if (!e.active(t)) continue;
    switch (e.kind) {
      case FaultKind::kOutage:
        o.force_outage = true;
        break;
      case FaultKind::kLossBurst:
        o.extra_loss += e.magnitude;
        break;
      case FaultKind::kLatencyInflation:
        o.extra_latency_s += e.magnitude;
        break;
      case FaultKind::kRssiCliff:
        o.rssi_offset_db -= e.magnitude;
        break;
      case FaultKind::kCorruptBurst:
        // Overlapping bursts compose as independent flip sources.
        o.corrupt_bit_prob = 1.0 - (1.0 - o.corrupt_bit_prob) * (1.0 - e.magnitude);
        break;
      case FaultKind::kTruncate:
        o.truncate_prob = 1.0 - (1.0 - o.truncate_prob) * (1.0 - e.magnitude);
        break;
      case FaultKind::kDuplicate:
        o.duplicate_prob = 1.0 - (1.0 - o.duplicate_prob) * (1.0 - e.magnitude);
        break;
      case FaultKind::kReorder:
        o.reorder_jitter_s = std::max(o.reorder_jitter_s, e.magnitude);
        break;
      case FaultKind::kWorkerStall:
      case FaultKind::kWorkerCrash:
      case FaultKind::kPoolCrash:
      case FaultKind::kPoolDegrade:
      case FaultKind::kPoolPartition:
        break;  // worker and pool faults don't touch the channel
    }
  }
  return o;
}

void FaultInjector::update(double now) {
  // One-shot activation bookkeeping: the whole event is known up front, so
  // the trace span (with its real duration) is emitted the moment it starts.
  for (size_t i = 0; i < schedule_.events.size(); ++i) {
    const FaultEvent& e = schedule_.events[i];
    if (activated_[i] || now < e.start) continue;
    activated_[i] = true;
    ++activated_count_;
    if (telemetry_ != nullptr) {
      const char* kind = fault_kind_name(e.kind);
      telemetry_->tracer().span(std::string("fault.") + kind, "faults", kind,
                                e.start, e.duration,
                                {{"magnitude", std::to_string(e.magnitude)}});
      telemetry_->metrics().counter("fault_injected_total", {{"kind", kind}}).inc();
    }
  }
  if (channel_ != nullptr) channel_->set_override(override_at(now));
}

bool FaultInjector::worker_unavailable(double t) const {
  for (const auto& [s, e] : worker_down_) {
    if (t >= s && t < e) return true;
    if (s > t) break;
  }
  return false;
}

bool FaultInjector::worker_crashed_in(double t0, double t1) const {
  for (const FaultEvent& e : schedule_.events) {
    if (e.kind != FaultKind::kWorkerCrash) continue;
    if (e.start < t1 && e.end() > t0) return true;
  }
  return false;
}

double FaultInjector::remote_completion(double start, double work_s) const {
  double t = start;
  double remaining = std::max(0.0, work_s);
  for (const auto& [s, e] : worker_down_) {
    if (e <= t) continue;
    if (t + remaining <= s) break;  // finishes before this window opens
    if (t >= s) {
      t = e;  // started inside the window: resume at its end
    } else {
      remaining -= s - t;  // work until the window opens, then pause
      t = e;
    }
  }
  return t + remaining;
}

double FaultInjector::link_restored_after(double t) const {
  double restored = t;
  for (const auto& [s, e] : outage_windows_) {
    if (restored >= s && restored < e) restored = e;
    if (s > restored) break;
  }
  return restored;
}

bool FaultInjector::link_forced_out(double t) const {
  for (const auto& [s, e] : outage_windows_) {
    if (t >= s && t < e) return true;
    if (s > t) break;
  }
  return false;
}

bool FaultInjector::pool_down(double t) const {
  for (const auto& [s, e] : pool_down_) {
    if (t >= s && t < e) return true;
    if (s > t) break;
  }
  return false;
}

bool FaultInjector::pool_crashed_in(double t0, double t1) const {
  for (const auto& [s, e] : pool_down_) {
    if (s < t1 && e > t0) return true;
    if (s >= t1) break;
  }
  return false;
}

double FaultInjector::pool_restored_after(double t) const {
  double restored = t;
  for (const auto& [s, e] : pool_down_) {
    if (restored >= s && restored < e) restored = e;
    if (s > restored) break;
  }
  return restored;
}

int FaultInjector::pool_cores_lost(double t) const {
  double lost = 0.0;
  for (const FaultEvent& e : schedule_.events) {
    if (e.kind == FaultKind::kPoolDegrade && e.active(t)) {
      lost = std::max(lost, e.magnitude);
    }
  }
  return static_cast<int>(lost);
}

double FaultInjector::pool_degrade_end(double t) const {
  double end = t;
  for (const FaultEvent& e : schedule_.events) {
    if (e.kind == FaultKind::kPoolDegrade && e.active(t)) {
      end = std::max(end, e.end());
    }
  }
  return end;
}

bool FaultInjector::session_partitioned(uint32_t session, double t) const {
  for (const FaultEvent& e : schedule_.events) {
    if (e.kind != FaultKind::kPoolPartition || !e.active(t)) continue;
    // Deterministic subset selection: hash the session id with the window's
    // start (so two partition windows cut *different* subsets) and compare
    // the resulting uniform [0,1) draw against the magnitude. Pure in the
    // schedule — no injector state, reproducible across pools and runs.
    const uint64_t salt = static_cast<uint64_t>(e.start * 1e3);
    const uint64_t h = splitmix64(static_cast<uint64_t>(session) ^
                                  (salt * 0x9e3779b97f4a7c15ULL));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u < e.magnitude) return true;
  }
  return false;
}

FaultSchedule make_chaos_schedule(double outage_s, double stall_fraction,
                                  double horizon_s) {
  // `horizon_s` is the *nominal* (fault-free) mission duration: the outage
  // lands mid-mission at 0.35×nominal, and stall windows cover [0.5, 2]×
  // nominal so they persist even when the faults themselves slow the run.
  FaultSchedule s;
  const double mid = 0.35 * horizon_s;
  if (outage_s > 0.0) {
    // Abrupt AP failure — no warning ramp, so Algorithm 2 cannot migrate
    // ahead of it (the case the lease protocol exists for) — followed by a
    // messy handoff to a weaker AP: RSSI cliff, loss burst, inflated latency.
    s.add(FaultKind::kOutage, mid, outage_s);
    s.add(FaultKind::kRssiCliff, mid + outage_s, 8.0, 12.0);
    s.add(FaultKind::kLossBurst, mid + outage_s, 6.0, 0.25);
    s.add(FaultKind::kLatencyInflation, mid + outage_s, 5.0, 0.04);
  }
  if (stall_fraction > 0.0) {
    // Periodic worker stalls: every 20 s the worker freezes for
    // stall_fraction of the period (the "probability" axis of the sweep,
    // made deterministic as a duty cycle).
    const double period = 20.0;
    const double stall = std::min(stall_fraction, 0.9) * period;
    for (double t = 0.5 * horizon_s; t + stall < 2.0 * horizon_s; t += period) {
      s.add(FaultKind::kWorkerStall, t, stall);
    }
  }
  return s;
}

FaultSchedule make_corruption_schedule(double flip_prob, double jitter_s,
                                       double horizon_s) {
  FaultSchedule s;
  const double span = 3.0 * horizon_s;
  if (flip_prob > 0.0) s.add(FaultKind::kCorruptBurst, 0.0, span, flip_prob);
  if (jitter_s > 0.0) s.add(FaultKind::kReorder, 0.0, span, jitter_s);
  // Short mid-mission truncation and duplication bursts: enough traffic
  // passes through them to exercise the runt-frame and dedupe paths without
  // dominating the corruption axis under study.
  s.add(FaultKind::kTruncate, 0.25 * horizon_s, 10.0, 0.2);
  s.add(FaultKind::kDuplicate, 0.55 * horizon_s, 10.0, 0.3);
  return s;
}

FaultSchedule make_pool_chaos_schedule(double crash_at, double crash_s,
                                       double partition_frac,
                                       double degraded_cores, double degrade_s) {
  FaultSchedule s;
  // A reachability brown-out precedes the crash: a subset of sessions starts
  // bouncing while the pool still looks healthy to everyone else — the case
  // that must drive *selective* failover, not a fleet-wide stampede.
  if (partition_frac > 0.0 && crash_at > 4.0) {
    s.add(FaultKind::kPoolPartition, crash_at - 4.0, 4.0, partition_frac);
  }
  if (crash_s > 0.0) s.add(FaultKind::kPoolCrash, crash_at, crash_s);
  // The restarted pool comes back short-handed (warm-up, lost replicas)
  // before recovering full capacity.
  if (degraded_cores > 0.0 && degrade_s > 0.0) {
    s.add(FaultKind::kPoolDegrade, crash_at + crash_s, degrade_s, degraded_cores);
  }
  return s;
}

}  // namespace lgv::sim
