#include "sim/robot.h"

#include <algorithm>
#include <cmath>

namespace lgv::sim {

namespace {
double approach(double current, double target, double max_delta) {
  if (target > current) return std::min(target, current + max_delta);
  return std::max(target, current - max_delta);
}
}  // namespace

DiffDriveRobot::DiffDriveRobot(RobotConfig config, Pose2D start, uint64_t seed)
    : config_(config), pose_(start), odom_pose_(start), rng_(seed) {}

void DiffDriveRobot::step(const World& world, double dt) {
  // Clamp command to mechanical limits, then accelerate toward it.
  Velocity2D target = cmd_;
  target.linear = std::clamp(target.linear, -config_.hard_max_linear, config_.hard_max_linear);
  target.angular =
      std::clamp(target.angular, -config_.hard_max_angular, config_.hard_max_angular);
  vel_.linear = approach(vel_.linear, target.linear, config_.max_linear_accel * dt);
  vel_.angular = approach(vel_.angular, target.angular, config_.max_angular_accel * dt);

  // Unicycle integration (exact arc when turning).
  Pose2D next = pose_;
  if (std::abs(vel_.angular) < 1e-6) {
    next.x += vel_.linear * std::cos(pose_.theta) * dt;
    next.y += vel_.linear * std::sin(pose_.theta) * dt;
  } else {
    const double r = vel_.linear / vel_.angular;
    next.x += r * (std::sin(pose_.theta + vel_.angular * dt) - std::sin(pose_.theta));
    next.y += r * (-std::cos(pose_.theta + vel_.angular * dt) + std::cos(pose_.theta));
  }
  next.theta = normalize_angle(pose_.theta + vel_.angular * dt);

  if (world.collides(next.position(), config_.radius)) {
    // Bumper hit: kill the linear motion, keep the rotation so the controller
    // can steer out.
    collided_ = true;
    vel_.linear = 0.0;
    next.x = pose_.x;
    next.y = pose_.y;
  } else {
    collided_ = false;
  }

  const Pose2D delta = pose_.between(next);
  traveled_ += std::hypot(delta.x, delta.y);
  pose_ = next;

  // Odometry integrates the same motion plus slip noise.
  Pose2D noisy_delta = delta;
  noisy_delta.x += rng_.gaussian(0.0, config_.odom_pos_noise);
  noisy_delta.y += rng_.gaussian(0.0, config_.odom_pos_noise * 0.3);
  noisy_delta.theta =
      normalize_angle(noisy_delta.theta + rng_.gaussian(0.0, config_.odom_theta_noise));
  odom_pose_ = odom_pose_.compose(noisy_delta);
}

msg::Odometry DiffDriveRobot::odometry(double stamp, uint64_t seq) {
  msg::Odometry o;
  o.header.stamp = stamp;
  o.header.seq = seq;
  o.header.frame_id = "odom";
  o.pose = odom_pose_;
  o.velocity = vel_;
  return o;
}

double DiffDriveRobot::odometry_drift() const {
  return distance(pose_.position(), odom_pose_.position());
}

void DiffDriveRobot::reset(const Pose2D& pose) {
  pose_ = pose;
  odom_pose_ = pose;
  vel_ = {};
  cmd_ = {};
  collided_ = false;
  traveled_ = 0.0;
}

}  // namespace lgv::sim
