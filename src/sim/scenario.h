// Reproducible evaluation environments: the lab-like building used for the
// end-to-end missions (Figs. 12–14), an Intel-Research-Lab-style office floor
// that feeds the offline SLAM benchmarks (Figs. 9–10), and the obstacle
// course of Fig. 14. Also generates deterministic scan logs — our stand-in
// for the Intel Research Lab 2D SLAM dataset.
#pragma once

#include <vector>

#include "common/geometry.h"
#include "msg/messages.h"
#include "sim/lidar.h"
#include "sim/world.h"

namespace lgv::sim {

struct Scenario {
  World world;
  Pose2D start;
  Pose2D goal;
  Point2D wap_position;  ///< where the wireless access point is mounted
  std::vector<Point2D> waypoints;  ///< scripted tour (for scan logs / Fig. 11)
};

/// ~12×10 m lab with interior walls, doorways and furniture-like boxes.
/// Start near the WAP, goal at the far end.
Scenario make_lab_scenario();

/// Office-floor maze with corridors and rooms — the stand-in for the Intel
/// Research Lab dataset's building.
Scenario make_office_scenario();

/// Fig. 14's course: an obstacle field (phase 1), a long straight corridor
/// (phase 2) and a right turn (phase 3).
Scenario make_obstacle_course_scenario();

/// Open arena with scattered discs; used in tests and the quickstart example.
Scenario make_open_scenario();

/// Chaos-suite environment (docs/faults.md): a hall with a centrally mounted
/// WAP so the *geometric* link stays healthy along the whole route — any
/// degradation a mission sees comes from the scripted FaultInjector events,
/// which keeps the bench_fault_injection sweeps attributable to the faults.
Scenario make_chaos_scenario();

/// Fleet-serving environment (docs/fleet-serving.md): vehicle `vehicle_index`
/// of a fleet of `fleet_size` in a shared warehouse hall. All vehicles see
/// the same walls and the same centrally mounted WAP (so, like the chaos
/// scenario, link quality is uniform and any offload trouble is attributable
/// to worker contention), but each gets its own start/goal lane so the
/// missions are geometrically distinct — fleet-scale results aren't N copies
/// of one route.
Scenario make_fleet_scenario(int vehicle_index, int fleet_size);

/// One entry of a recorded SLAM input log: odometry-integrated pose estimate
/// and the scan taken there.
struct ScanLogEntry {
  Pose2D odom_pose;   ///< noisy odometric pose (what SLAM gets)
  Pose2D true_pose;   ///< ground truth (for evaluation only)
  msg::LaserScan scan;
};

/// Drive a virtual robot through the scenario's waypoints at `speed`,
/// recording a scan every `scan_period` seconds of virtual time. Odometry
/// accumulates drift, so the log genuinely requires scan matching to map.
std::vector<ScanLogEntry> record_scan_log(const Scenario& scenario, double speed,
                                          double scan_period, size_t max_scans,
                                          uint64_t seed = 0x10c);

}  // namespace lgv::sim
