#include "sim/world.h"

#include <algorithm>
#include <cmath>

namespace lgv::sim {

World::World(double width_m, double height_m, double resolution) {
  frame_.origin = {0.0, 0.0};
  frame_.resolution = resolution;
  grid_ = Grid<uint8_t>(static_cast<int>(std::ceil(width_m / resolution)),
                        static_cast<int>(std::ceil(height_m / resolution)), 0);
}

bool World::occupied(const Point2D& p) const {
  const CellIndex c = frame_.world_to_cell(p);
  return occupied_cell(c);
}

bool World::occupied_cell(CellIndex c) const {
  if (!grid_.in_bounds(c)) return true;  // outside the map is solid
  return grid_.at(c) != 0;
}

bool World::in_bounds(const Point2D& p) const {
  return grid_.in_bounds(frame_.world_to_cell(p));
}

void World::set_occupied(const Point2D& p, bool value) {
  const CellIndex c = frame_.world_to_cell(p);
  if (grid_.in_bounds(c)) grid_.at(c) = value ? 1 : 0;
}

void World::add_box(const Point2D& min, const Point2D& max) {
  const CellIndex lo = frame_.world_to_cell(min);
  const CellIndex hi = frame_.world_to_cell(max);
  for (int y = std::max(0, lo.y); y <= std::min(grid_.height() - 1, hi.y); ++y) {
    for (int x = std::max(0, lo.x); x <= std::min(grid_.width() - 1, hi.x); ++x) {
      grid_.at(x, y) = 1;
    }
  }
}

void World::add_wall(const Point2D& a, const Point2D& b, double thickness) {
  const double len = distance(a, b);
  const int steps = std::max(1, static_cast<int>(len / (frame_.resolution * 0.5)));
  for (int i = 0; i <= steps; ++i) {
    const double t = static_cast<double>(i) / steps;
    const Point2D p = a + (b - a) * t;
    add_box({p.x - thickness / 2, p.y - thickness / 2},
            {p.x + thickness / 2, p.y + thickness / 2});
  }
}

void World::add_disc(const Point2D& center, double radius) {
  const CellIndex lo = frame_.world_to_cell({center.x - radius, center.y - radius});
  const CellIndex hi = frame_.world_to_cell({center.x + radius, center.y + radius});
  for (int y = std::max(0, lo.y); y <= std::min(grid_.height() - 1, hi.y); ++y) {
    for (int x = std::max(0, lo.x); x <= std::min(grid_.width() - 1, hi.x); ++x) {
      if (distance(frame_.cell_to_world({x, y}), center) <= radius) grid_.at(x, y) = 1;
    }
  }
}

void World::add_outer_walls(double thickness) {
  const double w = width_m(), h = height_m();
  add_box({0, 0}, {w, thickness});
  add_box({0, h - thickness}, {w, h});
  add_box({0, 0}, {thickness, h});
  add_box({w - thickness, 0}, {w, h});
}

double World::raycast(const Point2D& from, double angle, double max_range) const {
  // DDA traversal over the grid.
  const double dx = std::cos(angle), dy = std::sin(angle);
  const double res = frame_.resolution;
  CellIndex cell = frame_.world_to_cell(from);
  if (occupied_cell(cell)) return 0.0;

  const int step_x = dx > 0 ? 1 : -1;
  const int step_y = dy > 0 ? 1 : -1;
  // Parametric distance to the next vertical / horizontal cell boundary.
  const double cell_min_x = frame_.origin.x + cell.x * res;
  const double cell_min_y = frame_.origin.y + cell.y * res;
  double t_max_x = dx != 0.0
                       ? ((dx > 0 ? cell_min_x + res : cell_min_x) - from.x) / dx
                       : std::numeric_limits<double>::infinity();
  double t_max_y = dy != 0.0
                       ? ((dy > 0 ? cell_min_y + res : cell_min_y) - from.y) / dy
                       : std::numeric_limits<double>::infinity();
  const double t_delta_x =
      dx != 0.0 ? res / std::abs(dx) : std::numeric_limits<double>::infinity();
  const double t_delta_y =
      dy != 0.0 ? res / std::abs(dy) : std::numeric_limits<double>::infinity();

  double t = 0.0;
  while (t <= max_range) {
    if (t_max_x < t_max_y) {
      t = t_max_x;
      t_max_x += t_delta_x;
      cell.x += step_x;
    } else {
      t = t_max_y;
      t_max_y += t_delta_y;
      cell.y += step_y;
    }
    if (t > max_range) break;
    if (occupied_cell(cell)) return t;
  }
  return max_range;
}

bool World::line_of_sight(const Point2D& a, const Point2D& b) const {
  const double d = distance(a, b);
  if (d < 1e-9) return !occupied(a);
  const double angle = std::atan2(b.y - a.y, b.x - a.x);
  return raycast(a, angle, d) >= d - 1e-9;
}

bool World::collides(const Point2D& p, double radius) const {
  const CellIndex lo = frame_.world_to_cell({p.x - radius, p.y - radius});
  const CellIndex hi = frame_.world_to_cell({p.x + radius, p.y + radius});
  for (int y = lo.y; y <= hi.y; ++y) {
    for (int x = lo.x; x <= hi.x; ++x) {
      if (!grid_.in_bounds(x, y)) return true;
      if (grid_.at(x, y) != 0 &&
          distance(frame_.cell_to_world({x, y}), p) <= radius + frame_.resolution * 0.5) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace lgv::sim
