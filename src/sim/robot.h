// Differential-drive kinematics of the LGV with acceleration limits and
// collision handling, plus noisy odometry. Fills the role of the Turtlebot3
// base + microcontroller in the paper's testbed.
#pragma once

#include "common/geometry.h"
#include "common/rng.h"
#include "msg/messages.h"
#include "sim/world.h"

namespace lgv::sim {

struct RobotConfig {
  double radius = 0.105;            ///< footprint radius (Turtlebot3 burger)
  double max_linear_accel = 0.5;    ///< a_max of Eq. 2c (m/s²)
  double max_angular_accel = 3.0;   ///< rad/s²
  double hard_max_linear = 1.2;     ///< mechanical ceiling (m/s)
  double hard_max_angular = 2.84;   ///< rad/s (Turtlebot3 spec)
  double odom_pos_noise = 0.002;    ///< per-step position noise (m)
  double odom_theta_noise = 0.001;  ///< per-step heading noise (rad)
};

class DiffDriveRobot {
 public:
  DiffDriveRobot(RobotConfig config, Pose2D start, uint64_t seed = 0xb07);

  const RobotConfig& config() const { return config_; }
  const Pose2D& pose() const { return pose_; }          ///< ground truth
  const Velocity2D& velocity() const { return vel_; }
  double commanded_linear() const { return cmd_.linear; }
  bool collided() const { return collided_; }
  double odometry_drift() const;  ///< |odom - truth| (m)

  /// Latch a velocity command (from the Velocity Multiplexer).
  void set_command(const Velocity2D& cmd) { cmd_ = cmd; }

  /// Advance the base by dt: accelerate toward the command under the limits,
  /// integrate unicycle kinematics, stop dead on collision.
  void step(const World& world, double dt);

  /// Dead-reckoned odometry estimate (accumulates noise — what SLAM corrects).
  msg::Odometry odometry(double stamp, uint64_t seq);

  /// Teleport (test/setup use only).
  void reset(const Pose2D& pose);

  /// Distance traveled since construction/reset (m).
  double distance_traveled() const { return traveled_; }

 private:
  RobotConfig config_;
  Pose2D pose_;
  Pose2D odom_pose_;
  Velocity2D vel_;
  Velocity2D cmd_;
  bool collided_ = false;
  double traveled_ = 0.0;
  Rng rng_;
};

}  // namespace lgv::sim
