// Scripted fault injection for the §VI failure study. The emulated channel
// only degrades *geometrically* (the robot drives away from the WAP); real
// deployments also see faults uncorrelated with position — AP reboots, loss
// bursts from interference, handoff RSSI cliffs, and a stalled or crashed
// cloud worker. A FaultInjector replays a deterministic, virtual-time
// schedule of such events: channel faults are layered onto WirelessChannel
// as a ChannelOverride each tick, and remote-host faults are queried by the
// OffloadRuntime's lease protocol (finish_guarded) to decide when a remote
// execution is lost and must fall back to local re-execution.
//
// Schedule text format (docs/faults.md): one event per line,
//   <kind> <start_s> <duration_s> [magnitude]
// with '#' comments; kinds are outage, loss_burst, latency, rssi_cliff,
// worker_stall, worker_crash, corrupt_burst, truncate, duplicate, reorder,
// pool_crash, pool_degrade, pool_partition.
// Magnitude is per-kind: added loss probability, added seconds per packet,
// dB of RSSI drop, per-byte flip probability, per-packet truncate/duplicate
// probability, reorder jitter seconds, virtual cores lost (pool_degrade) or
// fraction of sessions unreachable (pool_partition); outage/stall/crash and
// pool_crash ignore it.
//
// The pool_* kinds are the fleet-scale failure plane (PR 9): where
// worker_stall/worker_crash hurt one vehicle's private worker, the pool
// kinds hurt the *shared* core::WorkerPool that serves the whole fleet.
// They are consulted by WorkerPool::submit/step via the pure queries below,
// never by the channel.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/telemetry/telemetry.h"
#include "net/wireless_channel.h"

namespace lgv::sim {

enum class FaultKind {
  kOutage,            ///< driver blocked: forced 100% outage window
  kLossBurst,         ///< per-packet loss spike (magnitude: added probability)
  kLatencyInflation,  ///< magnitude seconds added to every latency sample
  kRssiCliff,         ///< magnitude dB *drop* in mean RSSI (AP handoff)
  kWorkerStall,       ///< remote worker makes no progress during the window
  kWorkerCrash,       ///< worker dies at start (state lost), back after duration
  // Byte-level wire faults, applied as packet mutators inside the links
  // (docs/wire-format.md). Magnitude is per-kind, see below.
  kCorruptBurst,      ///< magnitude: per-byte flip probability
  kTruncate,          ///< magnitude: per-packet probability of a short read
  kDuplicate,         ///< magnitude: per-packet probability of a duplicate
  kReorder,           ///< magnitude: uniform delay jitter (s) inverting order
  // Fleet worker-pool faults (consulted by core::WorkerPool, not the channel).
  kPoolCrash,      ///< shared pool dies at start (all sessions lost), restarts after duration
  kPoolDegrade,    ///< magnitude: virtual cores lost for the window's duration
  kPoolPartition,  ///< magnitude: fraction of sessions unreachable (deterministic subset)
};

const char* fault_kind_name(FaultKind kind);
std::optional<FaultKind> fault_kind_from_name(std::string_view name);

struct FaultEvent {
  FaultKind kind = FaultKind::kOutage;
  double start = 0.0;      ///< virtual seconds
  double duration = 0.0;
  double magnitude = 0.0;  ///< per-kind meaning, see FaultKind

  double end() const { return start + duration; }
  /// Active on [start, end).
  bool active(double t) const { return t >= start && t < end(); }
};

struct FaultSchedule {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  /// End of the last event (0 when empty).
  double horizon() const;

  FaultSchedule& add(FaultKind kind, double start, double duration,
                     double magnitude = 0.0) {
    events.push_back({kind, start, duration, magnitude});
    return *this;
  }
};

/// Parse the docs/faults.md text format; throws std::invalid_argument on a
/// malformed line or unknown kind.
FaultSchedule parse_fault_schedule(const std::string& text);
/// Inverse of parse_fault_schedule (round-trips through it).
std::string format_fault_schedule(const FaultSchedule& schedule);

class FaultInjector {
 public:
  explicit FaultInjector(FaultSchedule schedule);

  /// Channel that receives the ChannelOverride overlay on update(); nullptr
  /// detaches (worker-fault queries keep working without a channel).
  void attach_channel(net::WirelessChannel* channel) { channel_ = channel; }
  /// Emit `fault.<kind>` spans on the "faults" lane as events activate and
  /// count `fault_injected_total{kind=...}`. nullptr disconnects.
  void set_telemetry(telemetry::Telemetry* telemetry);

  /// Apply the union of channel faults active at `now` to the attached
  /// channel. Call once per simulation tick, before stepping the links.
  void update(double now);

  /// Channel override the schedule implies at `t` (what update() would
  /// install); exposed for tests and offline analysis.
  net::ChannelOverride override_at(double t) const;

  // ---- worker-fault queries for the lease protocol (pure in the schedule) ----
  /// Worker making no progress at `t` (stall window or crash recovery).
  bool worker_unavailable(double t) const;
  /// A crash event starts inside or spans [t0, t1) — leased state is lost.
  bool worker_crashed_in(double t0, double t1) const;
  /// Virtual completion time of `work_s` seconds of remote work started at
  /// `start`, pushed out by every stall/crash window it overlaps.
  double remote_completion(double start, double work_s) const;
  /// First time >= t at which no forced-outage window blocks the link (the
  /// geometric channel may still be bad; this only reflects scripted outages).
  double link_restored_after(double t) const;
  bool link_forced_out(double t) const;

  // ---- pool-fault queries for the shared WorkerPool (pure in the schedule) ---
  /// A pool_crash window covers `t`: the shared pool is down, submissions and
  /// admissions bounce with a retryable "pool_crash" verdict.
  bool pool_down(double t) const;
  /// A pool_crash event overlaps [t0, t1) — results in flight across it are
  /// lost (the vehicle's lease-expiry path re-executes locally).
  bool pool_crashed_in(double t0, double t1) const;
  /// First time >= t with no pool_crash window active (the pool restarts
  /// empty: every session must re-admit).
  double pool_restored_after(double t) const;
  /// Virtual cores lost at `t`: the max magnitude over active pool_degrade
  /// events (overlapping degrades don't stack beyond the worst one).
  int pool_cores_lost(double t) const;
  /// End of the last pool_degrade window covering `t` (t itself when none) —
  /// the time the lost cores come back.
  double pool_degrade_end(double t) const;
  /// Session `session` is inside the unreachable subset of an active
  /// pool_partition window. The subset is a deterministic hash of the session
  /// id and the window's start time: the same magnitude partitions the same
  /// sessions on every run, and distinct windows cut distinct subsets.
  bool session_partitioned(uint32_t session, double t) const;

  const FaultSchedule& schedule() const { return schedule_; }
  /// Events whose start has been crossed by update() so far.
  uint64_t activated_events() const { return activated_count_; }

 private:
  FaultSchedule schedule_;
  /// Merged, sorted [start, end) windows where the worker makes no progress.
  std::vector<std::pair<double, double>> worker_down_;
  /// Merged, sorted forced-outage windows.
  std::vector<std::pair<double, double>> outage_windows_;
  /// Merged, sorted pool_crash windows (the shared pool is down).
  std::vector<std::pair<double, double>> pool_down_;
  std::vector<bool> activated_;  ///< per event, for one-shot trace emission
  uint64_t activated_count_ = 0;

  net::WirelessChannel* channel_ = nullptr;
  telemetry::Telemetry* telemetry_ = nullptr;
};

/// Canonical chaos schedule used by bench_fault_injection and the chaos
/// suite: one *abrupt* mid-mission hard outage of `outage_s` (no warning
/// ramp, so Algorithm 2 cannot migrate ahead of it) followed by a messy
/// AP-handoff recovery (RSSI cliff + loss burst + latency inflation), plus
/// periodic worker stalls with duty cycle `stall_fraction`. `horizon_s` is
/// the nominal fault-free mission duration the events are placed against.
/// Deterministic; all times in virtual seconds.
FaultSchedule make_chaos_schedule(double outage_s, double stall_fraction,
                                  double horizon_s);

/// Wire-corruption schedule for bench_corruption_sweep and the chaos suite's
/// corruption leg: a whole-mission `corrupt_burst` at `flip_prob` (per-byte)
/// composed with `reorder` jitter of `jitter_s`, plus short mid-mission
/// truncation and duplication bursts so every rejection cause is exercised.
/// `horizon_s` is the nominal fault-free mission duration; events cover
/// [0, 3×nominal] so the faults persist however much they slow the run.
FaultSchedule make_corruption_schedule(double flip_prob, double jitter_s,
                                       double horizon_s);

/// Pool-plane chaos for bench_fleet_chaos: a partial partition
/// (`partition_frac` of sessions unreachable) opens a few seconds before the
/// primary pool crashes outright at `crash_at` for `crash_s`; the pool then
/// restarts degraded, down `degraded_cores` virtual cores for `degrade_s`.
/// The sequence exercises every pool fault kind plus the failover, backoff
/// and re-admission machinery in one deterministic script.
FaultSchedule make_pool_chaos_schedule(double crash_at, double crash_s,
                                       double partition_frac,
                                       double degraded_cores, double degrade_s);

}  // namespace lgv::sim
