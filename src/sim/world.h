// The physical environment: a static 2D occupancy world the robot drives in
// and the lidar ray-casts against. Stands in for the paper's lab and for the
// Intel Research Lab dataset's building (see DESIGN.md substitutions).
#pragma once

#include <cstdint>

#include "common/geometry.h"
#include "common/grid.h"

namespace lgv::sim {

/// Static binary occupancy world (true = solid).
class World {
 public:
  World(double width_m, double height_m, double resolution = 0.05);

  const GridFrame& frame() const { return frame_; }
  const Grid<uint8_t>& grid() const { return grid_; }
  double width_m() const { return grid_.width() * frame_.resolution; }
  double height_m() const { return grid_.height() * frame_.resolution; }

  bool occupied(const Point2D& p) const;
  bool occupied_cell(CellIndex c) const;
  bool in_bounds(const Point2D& p) const;

  // ---- construction helpers ----
  void set_occupied(const Point2D& p, bool value = true);
  /// Solid axis-aligned rectangle [min, max].
  void add_box(const Point2D& min, const Point2D& max);
  /// Wall of the given thickness from a to b.
  void add_wall(const Point2D& a, const Point2D& b, double thickness = 0.1);
  /// Solid disc.
  void add_disc(const Point2D& center, double radius);
  /// One-cell border around the whole map.
  void add_outer_walls(double thickness = 0.1);

  /// Distance from `from` along `angle` to the first solid cell, capped at
  /// max_range. DDA grid traversal — the lidar beam model.
  double raycast(const Point2D& from, double angle, double max_range) const;

  /// True when the straight segment a→b crosses no solid cell.
  bool line_of_sight(const Point2D& a, const Point2D& b) const;

  /// True when a robot footprint (disc of `radius`) centered at p collides.
  bool collides(const Point2D& p, double radius) const;

 private:
  GridFrame frame_;
  Grid<uint8_t> grid_;
};

}  // namespace lgv::sim
