#include "perception/gmapping.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "platform/calibration.h"

namespace lgv::perception {

namespace calib = platform::calib;

Gmapping::Gmapping(GmappingConfig config, Point2D map_origin, double width_m,
                   double height_m, uint64_t seed)
    : config_(config), matcher_(config.matcher), rng_(seed) {
  particles_.reserve(static_cast<size_t>(config_.particles));
  for (int i = 0; i < config_.particles; ++i) {
    Particle p;
    p.map = OccupancyGrid(map_origin, width_m, height_m, config_.map);
    p.rng = rng_.fork(static_cast<uint64_t>(i) + 1);
    particles_.push_back(std::move(p));
  }
  poses_.resize(particles_.size());
  log_weights_.assign(particles_.size(), 0.0);
  weights_.assign(particles_.size(), 1.0 / static_cast<double>(config_.particles));
}

void Gmapping::initialize(const Pose2D& start) {
  poses_.assign_all(particles_.size(), start);
  log_weights_.assign(particles_.size(), 0.0);
  weights_.assign(particles_.size(), 1.0 / static_cast<double>(particles_.size()));
  have_last_odom_ = false;
  neff_ = static_cast<double>(particles_.size());
}

SlamUpdateStats Gmapping::process(const msg::Odometry& odom, const msg::LaserScan& scan,
                                  platform::ExecutionContext& ctx) {
  SlamUpdateStats stats;

  Pose2D delta;  // motion since the previous update, in the old body frame
  if (have_last_odom_) {
    delta = last_odom_.between(odom.pose);
  }
  last_odom_ = odom.pose;

  const bool first_scan = !have_last_odom_;
  have_last_odom_ = true;

  std::atomic<size_t> beam_evals{0};
  std::atomic<size_t> cells_updated{0};
  std::atomic<size_t> field_cells{0};

  // The per-scan endpoint precomputation is pose-independent, so it is
  // hoisted out of the per-particle loop and shared by all M particles
  // (previously recomputed inside every match() call).
  const bool use_field = matcher_.config().use_likelihood_field;
  PrecomputedScan pre;
  if (use_field && !first_scan && !particles_.empty()) {
    pre = precompute_scan(scan, matcher_.config().beam_stride,
                          particles_[0].map.frame().resolution);
  }

  // ---- Parallel per-particle phase (Fig. 6): motion sample, scanMatch,
  // weight, map integrate. Returns the cycles that particle cost.
  ctx.parallel_kernel(particles_.size(), [&](size_t i) -> double {
    Particle& p = particles_[i];
    // Motion model: apply the odometry delta corrupted by sampled noise.
    const double trans = std::hypot(delta.x, delta.y);
    const double rot = std::abs(delta.theta);
    Pose2D noisy = delta;
    noisy.x += p.rng.gaussian(0.0, config_.motion_noise_trans * trans +
                                       config_.motion_noise_mix * rot);
    noisy.y += p.rng.gaussian(0.0, config_.motion_noise_trans * trans * 0.5 +
                                       config_.motion_noise_mix * rot);
    noisy.theta = normalize_angle(
        noisy.theta + p.rng.gaussian(0.0, config_.motion_noise_rot * rot +
                                              config_.motion_noise_mix * trans));
    Pose2D pose = poses_.at(i).compose(noisy);

    size_t evals = 0;
    size_t rebuilt = 0;
    if (!first_scan) {
      // scanMatch refinement against this particle's own map, through its
      // likelihood field on the fast path (synced incrementally from the
      // map's changelog) or the brute-force reference scorer when disabled.
      MatchResult m;
      if (use_field) {
        rebuilt = p.field.sync(p.map);
        m = matcher_.match(p.field, pose, pre);
      } else {
        m = matcher_.match(p.map, pose, scan);
      }
      evals = m.beam_evaluations;
      pose = m.pose;
      log_weights_[i] += std::log(m.score + 1e-3);
    }
    poses_.set(i, pose);
    // Integrate the scan into this particle's map.
    const size_t touched = p.map.integrate_scan(pose, scan);
    beam_evals.fetch_add(evals, std::memory_order_relaxed);
    cells_updated.fetch_add(touched, std::memory_order_relaxed);
    field_cells.fetch_add(rebuilt, std::memory_order_relaxed);

    const double eval_cycles = use_field ? calib::kScanMatchCachedCyclesPerBeamEval
                                         : calib::kScanMatchCyclesPerBeamEval;
    return static_cast<double>(evals) * eval_cycles +
           static_cast<double>(rebuilt) * calib::kFieldRebuildCyclesPerCell +
           static_cast<double>(touched) * calib::kMapUpdateCyclesPerCell;
  });

  stats.beam_evaluations = beam_evals.load();
  stats.map_cells_updated = cells_updated.load();
  stats.field_cells_rebuilt = field_cells.load();

  // ---- Sequential phase: updateTreeWeights + selective resampling.
  normalize_weights();
  neff_ = effective_sample_size({weights_.begin(), weights_.end()});
  stats.neff = neff_;

  ctx.serial_work(static_cast<double>(particles_.size()) *
                  calib::kResampleCyclesPerParticle);
  if (neff_ < config_.resample_threshold * static_cast<double>(particles_.size())) {
    resample();
    stats.resampled = true;
  }
  return stats;
}

void Gmapping::normalize_weights() {
  double max_log = -std::numeric_limits<double>::infinity();
  for (double lw : log_weights_) max_log = std::max(max_log, lw);
  double sum = 0.0;
  for (size_t i = 0; i < weights_.size(); ++i) {
    weights_[i] = std::exp(log_weights_[i] - max_log);
    sum += weights_[i];
  }
  if (sum <= 0.0) {
    weights_.assign(weights_.size(),
                    1.0 / static_cast<double>(weights_.size()));
    return;
  }
  for (double& w : weights_) w /= sum;
}

double Gmapping::effective_sample_size(const std::vector<double>& weights) {
  double sum_sq = 0.0;
  for (double w : weights) sum_sq += w * w;
  return sum_sq > 0.0 ? 1.0 / sum_sq : 0.0;
}

void Gmapping::resample() {
  // Low-variance (systematic) resampling.
  const size_t n = particles_.size();
  std::vector<Particle> next;
  PoseBlock next_poses;
  next.reserve(n);
  next_poses.reserve(n);
  const double step = 1.0 / static_cast<double>(n);
  double u = rng_.uniform(0.0, step);
  double cumulative = weights_[0];
  size_t i = 0;
  for (size_t k = 0; k < n; ++k) {
    const double target = u + static_cast<double>(k) * step;
    while (cumulative < target && i + 1 < n) {
      ++i;
      cumulative += weights_[i];
    }
    Particle copy = particles_[i];  // deep copy incl. the map
    copy.rng = rng_.fork(k + 0x7e5a);
    next.push_back(std::move(copy));
    next_poses.push_back(poses_.at(i));
  }
  particles_ = std::move(next);
  poses_ = std::move(next_poses);
  log_weights_.assign(n, 0.0);
  weights_.assign(n, step);
  neff_ = static_cast<double>(n);
}

size_t Gmapping::best_index() const {
  size_t best = 0;
  for (size_t i = 1; i < weights_.size(); ++i) {
    if (weights_[i] > weights_[best]) best = i;
  }
  return best;
}

std::vector<uint8_t> Gmapping::serialize_state(StateEncoding encoding) const {
  last_codec_stats_ = {};
  WireWriter w;
  w.put_varint(particles_.size());
  w.put_bool(have_last_odom_);
  w.put_double(last_odom_.x);
  w.put_double(last_odom_.y);
  w.put_double(last_odom_.theta);
  w.put_double(neff_);
  for (size_t pi = 0; pi < particles_.size(); ++pi) {
    const Particle& p = particles_[pi];
    w.put_double(poses_.x()[pi]);
    w.put_double(poses_.y()[pi]);
    w.put_double(poses_.theta()[pi]);
    w.put_double(log_weights_[pi]);
    w.put_double(weights_[pi]);

    if (encoding == StateEncoding::kFullRaw) {
      p.map.serialize(w, GridEncoding::kRaw);
      ++last_codec_stats_.grids_full;
      continue;
    }
    if (encoding == StateEncoding::kDelta) {
      // Delta only against the snapshot of the last *committed* migration
      // this map descends from; an aborted transfer never advanced the base,
      // so the receiver is guaranteed to hold whatever we encode against.
      const OccupancyGrid* base = nullptr;
      const auto it = committed_bases_.find(p.map.delta_base_version());
      if (it != committed_bases_.end() && p.map.can_delta_against(it->second)) {
        base = &it->second;
      }
      if (base == nullptr) {
        ++last_codec_stats_.fallback_no_base;
      } else if (2 * p.map.dirty_tiles_since(base->write_version()) >=
                 p.map.tile_count()) {
        // Most of the map was rewritten (the PR 1 changelog overflowed long
        // before this point) — a delta cannot win, skip encoding it.
        ++last_codec_stats_.fallback_overflow;
        base = nullptr;
      } else {
        WireWriter delta_w;
        p.map.serialize_delta(delta_w, *base);
        WireWriter full_w;
        p.map.serialize(full_w, GridEncoding::kRle);
        if (delta_w.size() < full_w.size()) {
          w.put_bytes(delta_w.buffer().data(), delta_w.size());
          ++last_codec_stats_.grids_delta;
          continue;
        }
        ++last_codec_stats_.fallback_larger;
        base = nullptr;
      }
    }
    p.map.serialize(w, GridEncoding::kRle);
    ++last_codec_stats_.grids_full;
  }
  last_codec_stats_.bytes = w.size();
  return w.take();
}

void Gmapping::restore_state(const std::vector<uint8_t>& bytes) {
  WireReader r(bytes);
  // Each particle record holds at least 5 doubles plus a map; validating the
  // count against the buffer before reserve() rejects a hostile varint that
  // would otherwise allocate unbounded memory.
  const size_t n = r.get_count(5 * sizeof(double));
  have_last_odom_ = r.get_bool();
  const double ox = r.get_double();
  const double oy = r.get_double();
  const double oth = r.get_double();
  last_odom_ = {ox, oy, oth};
  neff_ = r.get_double();

  // Delta records decode against this receiver's replica of the sender's
  // last committed state — found among our pre-restore particle maps (we
  // restored that committed transfer earlier) or our own retained bases.
  std::map<uint64_t, const OccupancyGrid*> replicas;
  for (const Particle& p : particles_) {
    replicas.emplace(p.map.write_version(), &p.map);
  }
  for (const auto& [version, map] : committed_bases_) {
    replicas.emplace(version, &map);
  }
  const OccupancyGrid::BaseLookup lookup =
      [&](uint64_t write_version) -> const OccupancyGrid* {
    const auto it = replicas.find(write_version);
    return it == replicas.end() ? nullptr : it->second;
  };

  std::vector<Particle> particles;
  PoseBlock poses;
  aligned_vector<double> log_weights;
  aligned_vector<double> weights;
  particles.reserve(n);
  poses.reserve(n);
  log_weights.reserve(n);
  weights.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Particle p;
    const double x = r.get_double();
    const double y = r.get_double();
    const double th = r.get_double();
    poses.push_back({x, y, th});
    log_weights.push_back(r.get_double());
    weights.push_back(r.get_double());
    p.map = OccupancyGrid::deserialize_any(r, lookup);
    p.rng = rng_.fork(i + 0xfee1);
    particles.push_back(std::move(p));
  }
  particles_ = std::move(particles);
  poses_ = std::move(poses);
  log_weights_ = std::move(log_weights);
  weights_ = std::move(weights);
  committed_bases_.clear();
}

void Gmapping::mark_migration_committed() {
  committed_bases_.clear();  // only the latest committed generation matters
  for (Particle& p : particles_) {
    p.map.mark_delta_base();
    committed_bases_.try_emplace(p.map.write_version(), p.map);
  }
}

Pose2D Gmapping::best_pose() const { return poses_.at(best_index()); }

const OccupancyGrid& Gmapping::best_map() const { return particles_[best_index()].map; }

}  // namespace lgv::perception
