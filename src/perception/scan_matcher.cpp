#include "perception/scan_matcher.h"

#include <array>
#include <cmath>

namespace lgv::perception {

double ScanMatcher::score(const OccupancyGrid& map, const Pose2D& pose,
                          const msg::LaserScan& scan, size_t* evaluations) const {
  double total = 0.0;
  size_t evals = 0;
  const double res = map.frame().resolution;
  for (size_t i = 0; i < scan.ranges.size(); i += static_cast<size_t>(config_.beam_stride)) {
    const double r = static_cast<double>(scan.ranges[i]);
    if (r > scan.range_max || r < scan.range_min) continue;
    ++evals;
    const double angle = pose.theta + scan.angle_of(i);
    const double cx = std::cos(angle), sy = std::sin(angle);
    const Point2D end{pose.x + cx * r, pose.y + sy * r};
    // A valid hit has free space just before the endpoint.
    const Point2D before{pose.x + cx * (r - res), pose.y + sy * (r - res)};
    const CellIndex end_cell = map.frame().world_to_cell(end);
    const CellIndex before_cell = map.frame().world_to_cell(before);

    // Search the 3×3 neighborhood of the endpoint for the best occupied cell.
    double best = -1.0;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const CellIndex c{end_cell.x + dx, end_cell.y + dy};
        if (!map.is_occupied(c)) continue;
        const Point2D cw = map.frame().cell_to_world(c);
        const double d = distance(cw, end);
        const double s = std::exp(-d * d / (2.0 * config_.sigma * config_.sigma));
        best = std::max(best, s);
      }
    }
    if (best > 0.0 && !map.is_occupied(before_cell)) {
      total += best;
    } else if (map.is_unknown(end_cell)) {
      // Unknown terrain is neutral-slightly-positive so exploration scans
      // don't get repelled from frontier poses.
      total += 0.05;
    }
  }
  if (evaluations != nullptr) *evaluations += evals;
  return total;
}

MatchResult ScanMatcher::match(const OccupancyGrid& map, const Pose2D& initial,
                               const msg::LaserScan& scan) const {
  MatchResult result;
  result.pose = initial;
  result.score = score(map, initial, scan, &result.beam_evaluations);

  double step_xy = config_.search_step_xy;
  double step_th = config_.search_step_theta;
  for (int iter = 0; iter < config_.refinement_iterations; ++iter) {
    bool improved = true;
    while (improved) {
      improved = false;
      const std::array<Pose2D, 6> candidates = {
          Pose2D{result.pose.x + step_xy, result.pose.y, result.pose.theta},
          Pose2D{result.pose.x - step_xy, result.pose.y, result.pose.theta},
          Pose2D{result.pose.x, result.pose.y + step_xy, result.pose.theta},
          Pose2D{result.pose.x, result.pose.y - step_xy, result.pose.theta},
          Pose2D{result.pose.x, result.pose.y, result.pose.theta + step_th},
          Pose2D{result.pose.x, result.pose.y, result.pose.theta - step_th},
      };
      for (const Pose2D& cand : candidates) {
        const double s = score(map, cand, scan, &result.beam_evaluations);
        if (s > result.score + 1e-9) {
          result.score = s;
          result.pose = cand;
          improved = true;
        }
      }
    }
    step_xy *= 0.5;
    step_th *= 0.5;
  }
  return result;
}

}  // namespace lgv::perception
