#include "perception/scan_matcher.h"

#include <array>
#include <cmath>

#include "common/arena.h"
#include "common/simd_kernels.h"

namespace lgv::perception {

PrecomputedScan precompute_scan(const msg::LaserScan& scan, int stride,
                                double resolution) {
  PrecomputedScan pre;
  const size_t cap = scan.ranges.size() / static_cast<size_t>(stride) + 1;
  pre.end_x.reserve(cap);
  pre.end_y.reserve(cap);
  pre.before_x.reserve(cap);
  pre.before_y.reserve(cap);
  for (size_t i = 0; i < scan.ranges.size(); i += static_cast<size_t>(stride)) {
    const double r = static_cast<double>(scan.ranges[i]);
    if (r > scan.range_max || r < scan.range_min) continue;
    const double angle = scan.angle_of(i);
    const double cos_a = std::cos(angle), sin_a = std::sin(angle);
    pre.end_x.push_back(cos_a * r);
    pre.end_y.push_back(sin_a * r);
    pre.before_x.push_back(cos_a * (r - resolution));
    pre.before_y.push_back(sin_a * (r - resolution));
  }
  return pre;
}

double ScanMatcher::score(const OccupancyGrid& map, const Pose2D& pose,
                          const msg::LaserScan& scan, size_t* evaluations) const {
  double total = 0.0;
  size_t evals = 0;
  const double res = map.frame().resolution;
  for (size_t i = 0; i < scan.ranges.size(); i += static_cast<size_t>(config_.beam_stride)) {
    const double r = static_cast<double>(scan.ranges[i]);
    if (r > scan.range_max || r < scan.range_min) continue;
    ++evals;
    const double angle = pose.theta + scan.angle_of(i);
    const double cos_a = std::cos(angle), sin_a = std::sin(angle);
    const Point2D end{pose.x + cos_a * r, pose.y + sin_a * r};
    // A valid hit has free space just before the endpoint.
    const Point2D before{pose.x + cos_a * (r - res), pose.y + sin_a * (r - res)};
    const CellIndex end_cell = map.frame().world_to_cell(end);
    const CellIndex before_cell = map.frame().world_to_cell(before);

    // Search the 3×3 neighborhood of the endpoint for the best occupied cell.
    double best = -1.0;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const CellIndex c{end_cell.x + dx, end_cell.y + dy};
        if (!map.is_occupied(c)) continue;
        const Point2D cw = map.frame().cell_to_world(c);
        const double d = distance(cw, end);
        const double s = std::exp(-d * d / (2.0 * config_.sigma * config_.sigma));
        best = std::max(best, s);
      }
    }
    if (best > 0.0 && !map.is_occupied(before_cell)) {
      total += best;
    } else if (map.is_unknown(end_cell)) {
      // Unknown terrain is neutral-slightly-positive so exploration scans
      // don't get repelled from frontier poses.
      total += 0.05;
    }
  }
  if (evaluations != nullptr) *evaluations += evals;
  return total;
}

double ScanMatcher::score(const LikelihoodField& field, const Pose2D& pose,
                          const PrecomputedScan& pre, size_t* evaluations) const {
  if (evaluations != nullptr) *evaluations += pre.size();
  const simd::Level level = simd::active_level();
  if (level != simd::Level::kScalar && !pre.empty()) {
    return score_simd(level, field, pose, pre);
  }

  // Scalar reference loop — the semantic ground truth the SIMD pipeline is
  // tested against, and the path non-x86 / forced-scalar builds run.
  double total = 0.0;
  const double cos_t = std::cos(pose.theta), sin_t = std::sin(pose.theta);
  const GridFrame& frame = field.frame();
  for (size_t i = 0; i < pre.size(); ++i) {
    const Point2D end{pose.x + cos_t * pre.end_x[i] - sin_t * pre.end_y[i],
                      pose.y + sin_t * pre.end_x[i] + cos_t * pre.end_y[i]};
    const CellIndex end_cell = frame.world_to_cell(end);
    const uint16_t e = field.entry(end_cell);
    if ((e & LikelihoodField::kNeighborMask) != 0) {
      const Point2D before{
          pose.x + cos_t * pre.before_x[i] - sin_t * pre.before_y[i],
          pose.y + sin_t * pre.before_x[i] + cos_t * pre.before_y[i]};
      if (!field.occupied(frame.world_to_cell(before))) {
        // max over neighbors of exp(−d²/2σ²) == exp of the min d² (exp is
        // monotone), which the field recovers from its occupancy mask.
        const double d2 = field.min_obstacle_d2(end_cell, end);
        total += std::exp(-d2 / (2.0 * config_.sigma * config_.sigma));
        continue;
      }
    }
    if ((e & LikelihoodField::kUnknownBit) != 0) total += 0.05;
  }
  return total;
}

double ScanMatcher::score_simd(simd::Level level, const LikelihoodField& field,
                               const Pose2D& pose,
                               const PrecomputedScan& pre) const {
  const size_t n = pre.size();
  const GridFrame& frame = field.frame();
  Arena& arena = thread_scratch();
  const Arena::Scope scope(arena);

  // Stage A: transform + project every beam (vector).
  double* wx = arena.alloc_array<double>(n);
  double* wy = arena.alloc_array<double>(n);
  int32_t* ecx = arena.alloc_array<int32_t>(n);
  int32_t* ecy = arena.alloc_array<int32_t>(n);
  int32_t* bcx = arena.alloc_array<int32_t>(n);
  int32_t* bcy = arena.alloc_array<int32_t>(n);
  simd::TransformProjectArgs tp;
  tp.n = n;
  tp.end_x = pre.end_x.data();
  tp.end_y = pre.end_y.data();
  tp.before_x = pre.before_x.data();
  tp.before_y = pre.before_y.data();
  tp.pose_x = pose.x;
  tp.pose_y = pose.y;
  tp.cos_t = std::cos(pose.theta);
  tp.sin_t = std::sin(pose.theta);
  tp.origin_x = frame.origin.x;
  tp.origin_y = frame.origin.y;
  tp.resolution = frame.resolution;
  tp.out_end_x = wx;
  tp.out_end_y = wy;
  tp.out_end_cx = ecx;
  tp.out_end_cy = ecy;
  tp.out_before_cx = bcx;
  tp.out_before_cy = bcy;
  simd::transform_project(level, tp);

  // Stage B: field-entry lookups, hit/unknown classification, hit
  // compaction (scalar — gathers and branches).
  double* hx = arena.alloc_array<double>(n);
  double* hy = arena.alloc_array<double>(n);
  int32_t* hcx = arena.alloc_array<int32_t>(n);
  int32_t* hcy = arena.alloc_array<int32_t>(n);
  int32_t* hmask = arena.alloc_array<int32_t>(n);
  size_t hits = 0;
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const uint16_t e = field.entry({ecx[i], ecy[i]});
    if ((e & LikelihoodField::kNeighborMask) != 0) {
      if (!field.occupied({bcx[i], bcy[i]})) {
        hx[hits] = wx[i];
        hy[hits] = wy[i];
        hcx[hits] = ecx[i];
        hcy[hits] = ecy[i];
        hmask[hits] = e & LikelihoodField::kNeighborMask;
        ++hits;
        continue;
      }
    }
    if ((e & LikelihoodField::kUnknownBit) != 0) total += 0.05;
  }

  // Stage C: min neighbor d² + exp over the compacted hits (vector).
  simd::ScoreHitsArgs sh;
  sh.n = hits;
  sh.end_x = hx;
  sh.end_y = hy;
  sh.cell_x = hcx;
  sh.cell_y = hcy;
  sh.neighbor_mask = hmask;
  sh.origin_x = frame.origin.x;
  sh.origin_y = frame.origin.y;
  sh.resolution = frame.resolution;
  sh.two_sigma2 = 2.0 * config_.sigma * config_.sigma;
  if (hits > 0) total += simd::score_hits(level, sh);
  return total;
}

template <typename ScoreFn>
MatchResult ScanMatcher::hill_climb(const Pose2D& initial, ScoreFn&& score_fn) const {
  MatchResult result;
  result.pose = initial;
  result.score = score_fn(initial, &result.beam_evaluations);

  double step_xy = config_.search_step_xy;
  double step_th = config_.search_step_theta;
  for (int iter = 0; iter < config_.refinement_iterations; ++iter) {
    bool improved = true;
    while (improved) {
      improved = false;
      const std::array<Pose2D, 6> candidates = {
          Pose2D{result.pose.x + step_xy, result.pose.y, result.pose.theta},
          Pose2D{result.pose.x - step_xy, result.pose.y, result.pose.theta},
          Pose2D{result.pose.x, result.pose.y + step_xy, result.pose.theta},
          Pose2D{result.pose.x, result.pose.y - step_xy, result.pose.theta},
          Pose2D{result.pose.x, result.pose.y, result.pose.theta + step_th},
          Pose2D{result.pose.x, result.pose.y, result.pose.theta - step_th},
      };
      for (const Pose2D& cand : candidates) {
        const double s = score_fn(cand, &result.beam_evaluations);
        if (s > result.score + 1e-9) {
          result.score = s;
          result.pose = cand;
          improved = true;
        }
      }
    }
    step_xy *= 0.5;
    step_th *= 0.5;
  }
  return result;
}

MatchResult ScanMatcher::match(const OccupancyGrid& map, const Pose2D& initial,
                               const msg::LaserScan& scan) const {
  return hill_climb(initial, [&](const Pose2D& pose, size_t* evals) {
    return score(map, pose, scan, evals);
  });
}

MatchResult ScanMatcher::match(const LikelihoodField& field, const Pose2D& initial,
                               const msg::LaserScan& scan) const {
  return match(field, initial,
               precompute_scan(scan, config_.beam_stride, field.frame().resolution));
}

MatchResult ScanMatcher::match(const LikelihoodField& field, const Pose2D& initial,
                               const PrecomputedScan& pre) const {
  MatchResult result = hill_climb(initial, [&](const Pose2D& pose, size_t* evals) {
    return score(field, pose, pre, evals);
  });
  result.used_likelihood_field = true;
  return result;
}

}  // namespace lgv::perception
