#include "perception/scan_matcher.h"

#include <array>
#include <cmath>

namespace lgv::perception {

PrecomputedScan precompute_scan(const msg::LaserScan& scan, int stride,
                                double resolution) {
  PrecomputedScan pre;
  pre.beams.reserve(scan.ranges.size() / static_cast<size_t>(stride) + 1);
  for (size_t i = 0; i < scan.ranges.size(); i += static_cast<size_t>(stride)) {
    const double r = static_cast<double>(scan.ranges[i]);
    if (r > scan.range_max || r < scan.range_min) continue;
    const double angle = scan.angle_of(i);
    const double cos_a = std::cos(angle), sin_a = std::sin(angle);
    pre.beams.push_back({{cos_a * r, sin_a * r},
                         {cos_a * (r - resolution), sin_a * (r - resolution)}});
  }
  return pre;
}

double ScanMatcher::score(const OccupancyGrid& map, const Pose2D& pose,
                          const msg::LaserScan& scan, size_t* evaluations) const {
  double total = 0.0;
  size_t evals = 0;
  const double res = map.frame().resolution;
  for (size_t i = 0; i < scan.ranges.size(); i += static_cast<size_t>(config_.beam_stride)) {
    const double r = static_cast<double>(scan.ranges[i]);
    if (r > scan.range_max || r < scan.range_min) continue;
    ++evals;
    const double angle = pose.theta + scan.angle_of(i);
    const double cos_a = std::cos(angle), sin_a = std::sin(angle);
    const Point2D end{pose.x + cos_a * r, pose.y + sin_a * r};
    // A valid hit has free space just before the endpoint.
    const Point2D before{pose.x + cos_a * (r - res), pose.y + sin_a * (r - res)};
    const CellIndex end_cell = map.frame().world_to_cell(end);
    const CellIndex before_cell = map.frame().world_to_cell(before);

    // Search the 3×3 neighborhood of the endpoint for the best occupied cell.
    double best = -1.0;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const CellIndex c{end_cell.x + dx, end_cell.y + dy};
        if (!map.is_occupied(c)) continue;
        const Point2D cw = map.frame().cell_to_world(c);
        const double d = distance(cw, end);
        const double s = std::exp(-d * d / (2.0 * config_.sigma * config_.sigma));
        best = std::max(best, s);
      }
    }
    if (best > 0.0 && !map.is_occupied(before_cell)) {
      total += best;
    } else if (map.is_unknown(end_cell)) {
      // Unknown terrain is neutral-slightly-positive so exploration scans
      // don't get repelled from frontier poses.
      total += 0.05;
    }
  }
  if (evaluations != nullptr) *evaluations += evals;
  return total;
}

double ScanMatcher::score(const LikelihoodField& field, const Pose2D& pose,
                          const PrecomputedScan& pre, size_t* evaluations) const {
  double total = 0.0;
  const double cos_t = std::cos(pose.theta), sin_t = std::sin(pose.theta);
  const GridFrame& frame = field.frame();
  for (const PrecomputedScan::Beam& b : pre.beams) {
    const Point2D end{pose.x + cos_t * b.end.x - sin_t * b.end.y,
                      pose.y + sin_t * b.end.x + cos_t * b.end.y};
    const CellIndex end_cell = frame.world_to_cell(end);
    const uint16_t e = field.entry(end_cell);
    if ((e & LikelihoodField::kNeighborMask) != 0) {
      const Point2D before{pose.x + cos_t * b.before.x - sin_t * b.before.y,
                           pose.y + sin_t * b.before.x + cos_t * b.before.y};
      if (!field.occupied(frame.world_to_cell(before))) {
        // max over neighbors of exp(−d²/2σ²) == exp of the min d² (exp is
        // monotone), which the field recovers from its occupancy mask.
        const double d2 = field.min_obstacle_d2(end_cell, end);
        total += std::exp(-d2 / (2.0 * config_.sigma * config_.sigma));
        continue;
      }
    }
    if ((e & LikelihoodField::kUnknownBit) != 0) total += 0.05;
  }
  if (evaluations != nullptr) *evaluations += pre.beams.size();
  return total;
}

template <typename ScoreFn>
MatchResult ScanMatcher::hill_climb(const Pose2D& initial, ScoreFn&& score_fn) const {
  MatchResult result;
  result.pose = initial;
  result.score = score_fn(initial, &result.beam_evaluations);

  double step_xy = config_.search_step_xy;
  double step_th = config_.search_step_theta;
  for (int iter = 0; iter < config_.refinement_iterations; ++iter) {
    bool improved = true;
    while (improved) {
      improved = false;
      const std::array<Pose2D, 6> candidates = {
          Pose2D{result.pose.x + step_xy, result.pose.y, result.pose.theta},
          Pose2D{result.pose.x - step_xy, result.pose.y, result.pose.theta},
          Pose2D{result.pose.x, result.pose.y + step_xy, result.pose.theta},
          Pose2D{result.pose.x, result.pose.y - step_xy, result.pose.theta},
          Pose2D{result.pose.x, result.pose.y, result.pose.theta + step_th},
          Pose2D{result.pose.x, result.pose.y, result.pose.theta - step_th},
      };
      for (const Pose2D& cand : candidates) {
        const double s = score_fn(cand, &result.beam_evaluations);
        if (s > result.score + 1e-9) {
          result.score = s;
          result.pose = cand;
          improved = true;
        }
      }
    }
    step_xy *= 0.5;
    step_th *= 0.5;
  }
  return result;
}

MatchResult ScanMatcher::match(const OccupancyGrid& map, const Pose2D& initial,
                               const msg::LaserScan& scan) const {
  return hill_climb(initial, [&](const Pose2D& pose, size_t* evals) {
    return score(map, pose, scan, evals);
  });
}

MatchResult ScanMatcher::match(const LikelihoodField& field, const Pose2D& initial,
                               const msg::LaserScan& scan) const {
  const PrecomputedScan pre =
      precompute_scan(scan, config_.beam_stride, field.frame().resolution);
  MatchResult result = hill_climb(initial, [&](const Pose2D& pose, size_t* evals) {
    return score(field, pose, pre, evals);
  });
  result.used_likelihood_field = true;
  return result;
}

}  // namespace lgv::perception
