#include "perception/visual_odometry.h"

#include <algorithm>
#include <cmath>

#include "platform/calibration.h"

namespace lgv::perception {

std::vector<Landmark> extract_landmarks(const sim::World& world) {
  std::vector<Landmark> out;
  const auto& grid = world.grid();
  uint32_t next_id = 1;
  for (int y = 1; y + 1 < grid.height(); ++y) {
    for (int x = 1; x + 1 < grid.width(); ++x) {
      if (grid.at(x, y) == 0) continue;
      int free_neighbors = 0;
      free_neighbors += grid.at(x + 1, y) == 0;
      free_neighbors += grid.at(x - 1, y) == 0;
      free_neighbors += grid.at(x, y + 1) == 0;
      free_neighbors += grid.at(x, y - 1) == 0;
      if (free_neighbors >= 2) {
        out.push_back({next_id++, world.frame().cell_to_world({x, y})});
      }
    }
  }
  return out;
}

Camera::Camera(CameraConfig config, std::vector<Landmark> landmarks, uint64_t seed)
    : config_(config), landmarks_(std::move(landmarks)), rng_(seed) {}

VisualFrame Camera::capture(const sim::World& world, const Pose2D& pose, double stamp) {
  VisualFrame frame;
  frame.stamp = stamp;
  for (const Landmark& lm : landmarks_) {
    const Point2D rel = pose.inverse_transform(lm.position);
    const double range = rel.norm();
    if (range > config_.max_range || range < 0.05) continue;
    const double bearing = std::atan2(rel.y, rel.x);
    if (std::abs(bearing) > config_.fov_rad / 2.0) continue;
    // The landmark must actually be visible (not behind a wall). Its own
    // cell is solid, so check sight up to just short of it.
    const Point2D toward = pose.position() + (lm.position - pose.position()) *
                                                 ((range - 0.12) / range);
    if (!world.line_of_sight(pose.position(), toward)) continue;
    if (!rng_.bernoulli(config_.detection_probability)) continue;
    Point2D measured = rel;
    measured.x += rng_.gaussian(0.0, config_.pixel_noise);
    measured.y += rng_.gaussian(0.0, config_.pixel_noise);
    frame.ids.push_back(lm.id);
    frame.observations.push_back(measured);
  }
  return frame;
}

VisualOdometry::VisualOdometry(VisualOdometryConfig config, std::vector<Landmark> map)
    : config_(config), map_(std::move(map)) {
  std::sort(map_.begin(), map_.end(),
            [](const Landmark& a, const Landmark& b) { return a.id < b.id; });
}

void VisualOdometry::initialize(const Pose2D& start) {
  pose_ = start;
  frames_lost_ = 0;
}

std::optional<Pose2D> VisualOdometry::align(const std::vector<Point2D>& body,
                                            const std::vector<Point2D>& world) {
  if (body.size() < 2 || body.size() != world.size()) return std::nullopt;
  const double n = static_cast<double>(body.size());
  Point2D cb{0, 0}, cw{0, 0};
  for (size_t i = 0; i < body.size(); ++i) {
    cb = cb + body[i];
    cw = cw + world[i];
  }
  cb = cb * (1.0 / n);
  cw = cw * (1.0 / n);
  // 2D Kabsch: θ = atan2(Σ cross, Σ dot) of centered pairs.
  double s_cross = 0.0, s_dot = 0.0;
  for (size_t i = 0; i < body.size(); ++i) {
    const Point2D b = body[i] - cb;
    const Point2D w = world[i] - cw;
    s_cross += b.cross(w);
    s_dot += b.dot(w);
  }
  if (std::abs(s_cross) < 1e-12 && std::abs(s_dot) < 1e-12) return std::nullopt;
  const double theta = std::atan2(s_cross, s_dot);
  const double c = std::cos(theta), s = std::sin(theta);
  // T(p) = R·p + t with t chosen so centroids map onto each other.
  const Point2D t{cw.x - (c * cb.x - s * cb.y), cw.y - (s * cb.x + c * cb.y)};
  return Pose2D{t.x, t.y, theta};
}

VoUpdateStats VisualOdometry::update(const Pose2D& odom_delta, const VisualFrame& frame,
                                     platform::ExecutionContext& ctx) {
  VoUpdateStats stats;
  // Dead-reckon first; vision then corrects.
  pose_ = pose_.compose(odom_delta);

  // Associate observations with the landmark map by id. The plausibility
  // gate widens with loss duration — relocalization must tolerate the
  // odometric drift accumulated while blind.
  const double gate =
      config_.max_match_jump *
      (1.0 + 0.3 * static_cast<double>(std::min<size_t>(frames_lost_, 20)));
  std::vector<Point2D> body, world;
  for (size_t i = 0; i < frame.ids.size(); ++i) {
    const auto it = std::lower_bound(
        map_.begin(), map_.end(), frame.ids[i],
        [](const Landmark& lm, uint32_t id) { return lm.id < id; });
    if (it == map_.end() || it->id != frame.ids[i]) continue;
    const Point2D predicted = pose_.transform(frame.observations[i]);
    if (distance(predicted, it->position) > gate) continue;
    body.push_back(frame.observations[i]);
    world.push_back(it->position);
  }
  stats.matches = body.size();
  ctx.serial_work(static_cast<double>(frame.ids.size()) *
                      platform::calib::kAmclCyclesPerBeamEval +
                  static_cast<double>(body.size()) * 5000.0);

  if (static_cast<int>(body.size()) >= config_.min_matches) {
    if (const auto aligned = align(body, world)) {
      pose_ = *aligned;
      frames_lost_ = 0;
      stats.tracked = true;
    }
  }
  if (!stats.tracked) ++frames_lost_;
  stats.frames_lost = frames_lost_;
  return stats;
}

double max_trackable_angular_rate(double fov_rad, double frame_period_s,
                                  double safety_margin) {
  // Rotating by fov·(1 − margin) per frame still leaves a sliver of shared
  // view; beyond that, consecutive frames are disjoint and tracking dies.
  return fov_rad * (1.0 - safety_margin) / frame_period_s;
}

}  // namespace lgv::perception
