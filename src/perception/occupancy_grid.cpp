#include "perception/occupancy_grid.h"

#include <algorithm>
#include <atomic>
#include <cmath>

namespace lgv::perception {

namespace {
/// Map identities are process-unique so a derived field built against one
/// grid can never mistake a different grid at a coincidentally-equal change
/// version for its own.
uint64_t next_map_id() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

OccupancyGrid::OccupancyGrid() { init_derived_state(); }

OccupancyGrid::OccupancyGrid(Point2D origin, double width_m, double height_m,
                             OccupancyGridConfig config)
    : config_(config) {
  frame_.origin = origin;
  frame_.resolution = config.resolution;
  log_odds_ = Grid<float>(static_cast<int>(std::ceil(width_m / config.resolution)),
                          static_cast<int>(std::ceil(height_m / config.resolution)),
                          0.0f);
  init_derived_state();
}

void OccupancyGrid::init_derived_state() {
  occupied_log_odds_ =
      std::log(config_.occupied_threshold / (1.0 - config_.occupied_threshold));
  free_log_odds_ = std::log(config_.free_threshold / (1.0 - config_.free_threshold));
  map_id_ = next_map_id();
}

double OccupancyGrid::log_odds_at(CellIndex c) const {
  return log_odds_.in_bounds(c) ? static_cast<double>(log_odds_.at(c)) : 0.0;
}

double OccupancyGrid::probability_at(CellIndex c) const {
  const double l = log_odds_at(c);
  return 1.0 - 1.0 / (1.0 + std::exp(l));
}

bool OccupancyGrid::is_occupied(CellIndex c) const {
  return log_odds_.in_bounds(c) && occupied_log_odds(log_odds_.at(c));
}

bool OccupancyGrid::is_free(CellIndex c) const {
  return log_odds_.in_bounds(c) && static_cast<double>(log_odds_.at(c)) < free_log_odds_ &&
         log_odds_.at(c) != 0.0f;
}

bool OccupancyGrid::is_unknown(CellIndex c) const {
  return !log_odds_.in_bounds(c) || log_odds_.at(c) == 0.0f;
}

void OccupancyGrid::record_flip(CellIndex c) {
  if (changelog_.size() >= kChangelogCap) {
    // Overflow: drop the log and let derived structures rebuild in full.
    changelog_.clear();
    changelog_base_ = change_version_;
  }
  changelog_.push_back(c);
  ++change_version_;
}

void OccupancyGrid::update_cell(CellIndex c, double delta) {
  if (!log_odds_.in_bounds(c)) return;
  float& l = log_odds_.at(c);
  const bool was_unknown = l == 0.0f;
  const bool was_occupied = occupied_log_odds(l);
  if (was_unknown) ++known_cells_;
  l = static_cast<float>(std::clamp(static_cast<double>(l) + delta,
                                    config_.log_odds_min, config_.log_odds_max));
  if (l == 0.0f) l = delta < 0 ? -1e-3f : 1e-3f;  // stay "known"
  if (was_unknown || was_occupied != occupied_log_odds(l)) record_flip(c);
}

size_t OccupancyGrid::integrate_scan(const Pose2D& pose, const msg::LaserScan& scan) {
  size_t touched = 0;
  const CellIndex origin_cell = frame_.world_to_cell(pose.position());
  for (size_t i = 0; i < scan.ranges.size(); ++i) {
    const double r = static_cast<double>(scan.ranges[i]);
    const bool hit = r <= scan.range_max;
    const double reach = hit ? r : scan.range_max;
    const double angle = pose.theta + scan.angle_of(i);
    const Point2D end{pose.x + std::cos(angle) * reach, pose.y + std::sin(angle) * reach};
    const CellIndex end_cell = frame_.world_to_cell(end);
    const auto cells = bresenham_line(origin_cell, end_cell);
    // Free space along the beam (excluding the endpoint when it is a hit).
    const size_t n_free = cells.size() - (hit ? 1 : 0);
    for (size_t k = 0; k < n_free; ++k) update_cell(cells[k], config_.log_odds_miss);
    if (hit) update_cell(end_cell, config_.log_odds_hit);
    touched += cells.size();
  }
  return touched;
}

double OccupancyGrid::known_area_m2() const {
  return static_cast<double>(known_cells_) * frame_.resolution * frame_.resolution;
}

msg::OccupancyGridMsg OccupancyGrid::to_msg(double stamp) const {
  msg::OccupancyGridMsg m;
  m.header.stamp = stamp;
  m.header.frame_id = "map";
  m.frame = frame_;
  m.width = log_odds_.width();
  m.height = log_odds_.height();
  m.data.resize(static_cast<size_t>(m.width) * m.height, msg::kUnknownCell);
  for (int y = 0; y < m.height; ++y) {
    for (int x = 0; x < m.width; ++x) {
      const CellIndex c{x, y};
      if (is_unknown(c)) continue;
      const double p = probability_at(c);
      m.data[static_cast<size_t>(y) * m.width + x] =
          static_cast<int8_t>(std::lround(p * 100.0));
    }
  }
  return m;
}

OccupancyGrid OccupancyGrid::from_msg(const msg::OccupancyGridMsg& m,
                                      OccupancyGridConfig config) {
  config.resolution = m.frame.resolution;
  OccupancyGrid g(m.frame.origin, m.width * m.frame.resolution,
                  m.height * m.frame.resolution, config);
  for (int y = 0; y < m.height && y < g.height(); ++y) {
    for (int x = 0; x < m.width && x < g.width(); ++x) {
      const int8_t v = m.at(x, y);
      if (v < 0) continue;
      const double p = std::clamp(static_cast<double>(v) / 100.0, 0.01, 0.99);
      const double l = std::log(p / (1.0 - p));
      g.update_cell({x, y}, l);
    }
  }
  return g;
}

void OccupancyGrid::serialize(WireWriter& w) const {
  w.put_double(frame_.origin.x);
  w.put_double(frame_.origin.y);
  w.put_double(frame_.resolution);
  w.put_signed(log_odds_.width());
  w.put_signed(log_odds_.height());
  w.put_double(config_.log_odds_hit);
  w.put_double(config_.log_odds_miss);
  w.put_double(config_.log_odds_min);
  w.put_double(config_.log_odds_max);
  w.put_double(config_.occupied_threshold);
  w.put_double(config_.free_threshold);
  w.put_varint(known_cells_);
  w.put_repeated_float(log_odds_.data());
}

OccupancyGrid OccupancyGrid::deserialize(WireReader& r) {
  OccupancyGrid g;
  g.frame_.origin.x = r.get_double();
  g.frame_.origin.y = r.get_double();
  g.frame_.resolution = r.get_double();
  const int w = static_cast<int>(r.get_signed());
  const int h = static_cast<int>(r.get_signed());
  g.config_.resolution = g.frame_.resolution;
  g.config_.log_odds_hit = r.get_double();
  g.config_.log_odds_miss = r.get_double();
  g.config_.log_odds_min = r.get_double();
  g.config_.log_odds_max = r.get_double();
  g.config_.occupied_threshold = r.get_double();
  g.config_.free_threshold = r.get_double();
  g.known_cells_ = r.get_varint();
  g.log_odds_ = Grid<float>(w, h, 0.0f);
  g.log_odds_.data() = r.get_repeated_float();
  // Thresholds depend on the deserialized config; derived fields (likelihood
  // field) are not part of the wire format and rebuild against the new id.
  g.init_derived_state();
  return g;
}

OccupancyGrid OccupancyGrid::from_binary(const GridFrame& frame, const Grid<uint8_t>& solid,
                                         OccupancyGridConfig config) {
  config.resolution = frame.resolution;
  OccupancyGrid g(frame.origin, solid.width() * frame.resolution,
                  solid.height() * frame.resolution, config);
  for (int y = 0; y < solid.height(); ++y) {
    for (int x = 0; x < solid.width(); ++x) {
      g.update_cell({x, y}, solid.at(x, y) != 0 ? config.log_odds_max : config.log_odds_min);
    }
  }
  return g;
}

}  // namespace lgv::perception
