#include "perception/occupancy_grid.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace lgv::perception {

namespace {
/// Map identities are process-unique so a derived field built against one
/// grid can never mistake a different grid at a coincidentally-equal change
/// version for its own.
uint64_t next_map_id() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Write-version stamps come from one process-wide counter so a stamp is
/// never reused across grids: (map_id, write_version) names one exact state
/// even after copies of a map diverge through resampling.
std::atomic<uint64_t> g_write_version{1};

uint64_t next_write_version() {
  return g_write_version.fetch_add(1, std::memory_order_relaxed);
}

/// After restoring a stamp from the wire, push the counter past it so stamps
/// minted later still compare strictly greater (matters only for persisted or
/// crafted buffers; in-process the counter is already ahead).
void bump_write_version_past(uint64_t v) {
  uint64_t cur = g_write_version.load(std::memory_order_relaxed);
  while (cur <= v &&
         !g_write_version.compare_exchange_weak(cur, v + 1, std::memory_order_relaxed)) {
  }
}

/// Upper bound on w*h accepted from the wire (256 MiB of cells) — the dims
/// are attacker-controlled and RLE legitimately decodes a large grid from a
/// handful of bytes, so remaining-buffer size cannot bound the allocation.
constexpr uint64_t kMaxWireCells = uint64_t{1} << 26;

bool same_bits(float a, float b) { return std::memcmp(&a, &b, sizeof(float)) == 0; }

/// Full-snapshot cell payload as (run_len, value) runs of bit-identical
/// floats. Occupancy grids are long stretches of unknown (0.0f) and
/// saturated (±log_odds_max) cells, so this routinely shrinks the block by
/// an order of magnitude without losing a bit.
void encode_rle(WireWriter& w, const std::vector<float>& cells) {
  size_t i = 0;
  while (i < cells.size()) {
    size_t j = i + 1;
    while (j < cells.size() && same_bits(cells[j], cells[i])) ++j;
    w.put_varint(j - i);
    w.put_float(cells[i]);
    i = j;
  }
}

void decode_rle(WireReader& r, std::vector<float>& out) {
  size_t filled = 0;
  while (filled < out.size()) {
    const uint64_t len = r.get_varint();
    if (len == 0 || len > out.size() - filled) {
      throw std::out_of_range("grid rle: bad run length");
    }
    const float v = r.get_float();
    std::fill_n(out.begin() + filled, static_cast<size_t>(len), v);
    filled += static_cast<size_t>(len);
  }
}
}  // namespace

OccupancyGrid::OccupancyGrid() { init_derived_state(); }

OccupancyGrid::OccupancyGrid(Point2D origin, double width_m, double height_m,
                             OccupancyGridConfig config)
    : config_(config) {
  frame_.origin = origin;
  frame_.resolution = config.resolution;
  const int w = static_cast<int>(std::ceil(width_m / config.resolution));
  const int h = static_cast<int>(std::ceil(height_m / config.resolution));
  log_odds_ = CowGrid<float>(w, h, 0.0f);
  tile_versions_ = CowGrid<uint64_t>((w + kTileSize - 1) / kTileSize,
                                     (h + kTileSize - 1) / kTileSize, 0);
  init_derived_state();
}

void OccupancyGrid::init_derived_state() {
  occupied_log_odds_ =
      std::log(config_.occupied_threshold / (1.0 - config_.occupied_threshold));
  free_log_odds_ = std::log(config_.free_threshold / (1.0 - config_.free_threshold));
  map_id_ = next_map_id();
  write_version_ = next_write_version();
}

double OccupancyGrid::log_odds_at(CellIndex c) const {
  return log_odds_.in_bounds(c) ? static_cast<double>(log_odds_.at(c)) : 0.0;
}

double OccupancyGrid::probability_at(CellIndex c) const {
  const double l = log_odds_at(c);
  return 1.0 - 1.0 / (1.0 + std::exp(l));
}

bool OccupancyGrid::is_occupied(CellIndex c) const {
  return log_odds_.in_bounds(c) && occupied_log_odds(log_odds_.at(c));
}

bool OccupancyGrid::is_free(CellIndex c) const {
  return log_odds_.in_bounds(c) && static_cast<double>(log_odds_.at(c)) < free_log_odds_ &&
         log_odds_.at(c) != 0.0f;
}

bool OccupancyGrid::is_unknown(CellIndex c) const {
  return !log_odds_.in_bounds(c) || log_odds_.at(c) == 0.0f;
}

std::vector<CellIndex>& OccupancyGrid::mutable_changelog() {
  if (changelog_ == nullptr) {
    changelog_ = std::make_shared<std::vector<CellIndex>>();
  } else if (changelog_.use_count() != 1) {
    changelog_ = std::make_shared<std::vector<CellIndex>>(*changelog_);
  }
  return *changelog_;
}

void OccupancyGrid::record_flip(CellIndex c) {
  if (changelog_ != nullptr && changelog_->size() >= kChangelogCap) {
    // Overflow: drop the log (releasing, not cloning, a shared block) and
    // let derived structures rebuild in full.
    changelog_ = nullptr;
    changelog_base_ = change_version_;
  }
  mutable_changelog().push_back(c);
  ++change_version_;
}

void OccupancyGrid::begin_mutation_batch() { write_version_ = next_write_version(); }

void OccupancyGrid::touch_tile(CellIndex c) {
  const int tx = c.x / kTileSize;
  const int ty = c.y / kTileSize;
  if (tile_versions_.at(tx, ty) != write_version_) {
    tile_versions_.mut_at(tx, ty) = write_version_;
  }
}

void OccupancyGrid::update_cell(CellIndex c, double delta) {
  if (!log_odds_.in_bounds(c)) return;
  const float old = log_odds_.at(c);
  const bool was_unknown = old == 0.0f;
  const bool was_occupied = occupied_log_odds(old);
  float next = static_cast<float>(std::clamp(static_cast<double>(old) + delta,
                                             config_.log_odds_min, config_.log_odds_max));
  if (next == 0.0f) next = delta < 0 ? -1e-3f : 1e-3f;  // stay "known"
  // Saturated cells re-observed with the same evidence land on the same
  // clamped value; skipping the write keeps a CoW-shared block shared.
  if (same_bits(next, old)) return;
  log_odds_.mut_at(c) = next;
  touch_tile(c);
  if (was_unknown) ++known_cells_;
  if (was_unknown || was_occupied != occupied_log_odds(next)) record_flip(c);
}

size_t OccupancyGrid::integrate_scan(const Pose2D& pose, const msg::LaserScan& scan) {
  begin_mutation_batch();
  size_t touched = 0;
  const CellIndex origin_cell = frame_.world_to_cell(pose.position());
  for (size_t i = 0; i < scan.ranges.size(); ++i) {
    const double r = static_cast<double>(scan.ranges[i]);
    const bool hit = r <= scan.range_max;
    const double reach = hit ? r : scan.range_max;
    const double angle = pose.theta + scan.angle_of(i);
    const Point2D end{pose.x + std::cos(angle) * reach, pose.y + std::sin(angle) * reach};
    const CellIndex end_cell = frame_.world_to_cell(end);
    const auto cells = bresenham_line(origin_cell, end_cell);
    // Free space along the beam (excluding the endpoint when it is a hit).
    const size_t n_free = cells.size() - (hit ? 1 : 0);
    for (size_t k = 0; k < n_free; ++k) update_cell(cells[k], config_.log_odds_miss);
    if (hit) update_cell(end_cell, config_.log_odds_hit);
    touched += cells.size();
  }
  return touched;
}

double OccupancyGrid::known_area_m2() const {
  return static_cast<double>(known_cells_) * frame_.resolution * frame_.resolution;
}

size_t OccupancyGrid::dirty_tiles_since(uint64_t base_version) const {
  size_t n = 0;
  for (uint64_t v : tile_versions_.data()) {
    if (v > base_version) ++n;
  }
  return n;
}

msg::OccupancyGridMsg OccupancyGrid::to_msg(double stamp) const {
  msg::OccupancyGridMsg m;
  m.header.stamp = stamp;
  m.header.frame_id = "map";
  m.frame = frame_;
  m.width = log_odds_.width();
  m.height = log_odds_.height();
  m.data.resize(static_cast<size_t>(m.width) * m.height, msg::kUnknownCell);
  for (int y = 0; y < m.height; ++y) {
    for (int x = 0; x < m.width; ++x) {
      const CellIndex c{x, y};
      if (is_unknown(c)) continue;
      const double p = probability_at(c);
      m.data[static_cast<size_t>(y) * m.width + x] =
          static_cast<int8_t>(std::lround(p * 100.0));
    }
  }
  return m;
}

OccupancyGrid OccupancyGrid::from_msg(const msg::OccupancyGridMsg& m,
                                      OccupancyGridConfig config) {
  config.resolution = m.frame.resolution;
  OccupancyGrid g(m.frame.origin, m.width * m.frame.resolution,
                  m.height * m.frame.resolution, config);
  for (int y = 0; y < m.height && y < g.height(); ++y) {
    for (int x = 0; x < m.width && x < g.width(); ++x) {
      const int8_t v = m.at(x, y);
      if (v < 0) continue;
      const double p = std::clamp(static_cast<double>(v) / 100.0, 0.01, 0.99);
      const double l = std::log(p / (1.0 - p));
      g.update_cell({x, y}, l);
    }
  }
  return g;
}

void OccupancyGrid::serialize_header(WireWriter& w) const {
  w.put_varint(write_version_);
  w.put_varint(change_version_);
  w.put_double(frame_.origin.x);
  w.put_double(frame_.origin.y);
  w.put_double(frame_.resolution);
  w.put_signed(log_odds_.width());
  w.put_signed(log_odds_.height());
  w.put_double(config_.log_odds_hit);
  w.put_double(config_.log_odds_miss);
  w.put_double(config_.log_odds_min);
  w.put_double(config_.log_odds_max);
  w.put_double(config_.occupied_threshold);
  w.put_double(config_.free_threshold);
  w.put_varint(known_cells_);
}

void OccupancyGrid::deserialize_header(WireReader& r) {
  const uint64_t write_version = r.get_varint();
  const uint64_t change_version = r.get_varint();
  frame_.origin.x = r.get_double();
  frame_.origin.y = r.get_double();
  frame_.resolution = r.get_double();
  const int w = static_cast<int>(r.get_signed());
  const int h = static_cast<int>(r.get_signed());
  if (w < 0 || h < 0 ||
      static_cast<uint64_t>(w) * static_cast<uint64_t>(h) > kMaxWireCells) {
    throw std::out_of_range("grid: wire dimensions out of range");
  }
  config_.resolution = frame_.resolution;
  config_.log_odds_hit = r.get_double();
  config_.log_odds_miss = r.get_double();
  config_.log_odds_min = r.get_double();
  config_.log_odds_max = r.get_double();
  config_.occupied_threshold = r.get_double();
  config_.free_threshold = r.get_double();
  known_cells_ = r.get_varint();
  // init_derived_state mints a *fresh* map_id — a stale likelihood field must
  // never mistake the replica for the grid it was built against. The wire
  // write_version is preserved instead: it is globally unique, so a later
  // delta keyed on this state still decodes here.
  init_derived_state();
  write_version_ = write_version;
  bump_write_version_past(write_version);
  change_version_ = change_version;
  changelog_ = nullptr;
  changelog_base_ = change_version;
  delta_base_version_ = 0;
  log_odds_ = CowGrid<float>(w, h, 0.0f);
  // Every tile conservatively "last written at" the restored state's stamp.
  tile_versions_ = CowGrid<uint64_t>((w + kTileSize - 1) / kTileSize,
                                     (h + kTileSize - 1) / kTileSize, write_version);
}

void OccupancyGrid::serialize(WireWriter& w, GridEncoding encoding) const {
  assert(encoding == GridEncoding::kRaw || encoding == GridEncoding::kRle);
  w.put_varint(static_cast<uint64_t>(encoding));
  serialize_header(w);
  if (encoding == GridEncoding::kRaw) {
    w.put_repeated_float(log_odds_.data());
  } else {
    encode_rle(w, log_odds_.data());
  }
}

OccupancyGrid OccupancyGrid::deserialize(WireReader& r) {
  return deserialize_any(r, nullptr);
}

bool OccupancyGrid::can_delta_against(const OccupancyGrid& base) const {
  // The write_version match pins the exact state (stamps are never reused),
  // so no further identity check is needed; dims/frame are sanity belts.
  return delta_base_version_ != 0 && base.write_version_ == delta_base_version_ &&
         base.width() == width() && base.height() == height() && base.frame_ == frame_;
}

void OccupancyGrid::serialize_delta(WireWriter& w, const OccupancyGrid& base) const {
  assert(can_delta_against(base));
  w.put_varint(static_cast<uint64_t>(GridEncoding::kDelta));
  w.put_varint(base.write_version_);
  w.put_varint(write_version_);
  w.put_varint(change_version_);
  w.put_varint(known_cells_);

  // Collect runs of changed cells in ascending flat-index order. Only tiles
  // stamped after the base can contain a change, so the scan is proportional
  // to the written region, not the map.
  struct Run {
    size_t start;
    size_t len;
  };
  std::vector<Run> runs;
  std::vector<float> values;
  if (!log_odds_.shares_storage_with(base.log_odds_)) {
    const std::vector<float>& cur = log_odds_.data();
    const std::vector<float>& old = base.log_odds_.data();
    const int tiles_w = tile_versions_.width();
    const int tiles_h = tile_versions_.height();
    const int grid_w = width();
    const int grid_h = height();
    std::vector<int> dirty_in_row;
    for (int ty = 0; ty < tiles_h; ++ty) {
      dirty_in_row.clear();
      for (int tx = 0; tx < tiles_w; ++tx) {
        if (tile_versions_.at(tx, ty) > base.write_version_) dirty_in_row.push_back(tx);
      }
      if (dirty_in_row.empty()) continue;
      const int y_end = std::min(grid_h, (ty + 1) * kTileSize);
      for (int y = ty * kTileSize; y < y_end; ++y) {
        for (int tx : dirty_in_row) {
          const int x_end = std::min(grid_w, (tx + 1) * kTileSize);
          for (int x = tx * kTileSize; x < x_end; ++x) {
            const size_t idx = static_cast<size_t>(y) * grid_w + x;
            if (same_bits(cur[idx], old[idx])) continue;
            if (!runs.empty() && runs.back().start + runs.back().len == idx) {
              ++runs.back().len;
            } else {
              runs.push_back({idx, 1});
            }
            values.push_back(cur[idx]);
          }
        }
      }
    }
  }

  w.put_varint(runs.size());
  size_t prev_end = 0;
  size_t vi = 0;
  for (const Run& run : runs) {
    w.put_varint(run.start - prev_end);  // gap from the previous run's end
    w.put_varint(run.len);
    for (size_t k = 0; k < run.len; ++k) w.put_float(values[vi++]);
    prev_end = run.start + run.len;
  }
}

void OccupancyGrid::apply_delta_body(WireReader& r) {
  // Each run costs at least gap(1) + len(1) + one float(4) bytes on the wire.
  const size_t n_runs = r.get_count(6);
  const size_t total = log_odds_.size();
  size_t pos = 0;
  for (size_t i = 0; i < n_runs; ++i) {
    const uint64_t gap = r.get_varint();
    if (gap > total - pos) throw std::out_of_range("grid delta: run start out of range");
    pos += static_cast<size_t>(gap);
    const size_t len = r.get_count(4);
    if (len == 0 || len > total - pos) {
      throw std::out_of_range("grid delta: run length out of range");
    }
    std::vector<float>& cells = log_odds_.mutable_data();
    for (size_t k = 0; k < len; ++k) {
      cells[pos + k] = r.get_float();
      touch_tile({static_cast<int>((pos + k) % width()),
                  static_cast<int>((pos + k) / width())});
    }
    pos += len;
  }
}

OccupancyGrid OccupancyGrid::deserialize_any(WireReader& r, const BaseLookup& base_lookup) {
  const uint64_t enc = r.get_varint();
  switch (static_cast<GridEncoding>(enc)) {
    case GridEncoding::kRaw: {
      OccupancyGrid g;
      g.deserialize_header(r);
      std::vector<float> cells = r.get_repeated_float();
      if (cells.size() != g.log_odds_.size()) {
        throw std::out_of_range("grid: raw cell count mismatch");
      }
      g.log_odds_.mutable_data() = std::move(cells);
      return g;
    }
    case GridEncoding::kRle: {
      OccupancyGrid g;
      g.deserialize_header(r);
      decode_rle(r, g.log_odds_.mutable_data());
      return g;
    }
    case GridEncoding::kDelta: {
      const uint64_t base_version = r.get_varint();
      const uint64_t new_version = r.get_varint();
      const uint64_t change_version = r.get_varint();
      const uint64_t known_cells = r.get_varint();
      const OccupancyGrid* base = base_lookup ? base_lookup(base_version) : nullptr;
      if (base == nullptr || base->write_version_ != base_version) {
        throw std::runtime_error("grid delta: base state unknown to receiver");
      }
      OccupancyGrid g = *base;  // O(1): clones share the cell block (CoW)
      bump_write_version_past(new_version);
      g.write_version_ = new_version;
      g.change_version_ = change_version;
      g.known_cells_ = known_cells;
      g.changelog_ = nullptr;
      g.changelog_base_ = change_version;
      g.delta_base_version_ = 0;
      g.apply_delta_body(r);
      return g;
    }
    default:
      throw std::runtime_error("grid: unknown wire encoding");
  }
}

OccupancyGrid OccupancyGrid::from_binary(const GridFrame& frame, const Grid<uint8_t>& solid,
                                         OccupancyGridConfig config) {
  config.resolution = frame.resolution;
  OccupancyGrid g(frame.origin, solid.width() * frame.resolution,
                  solid.height() * frame.resolution, config);
  for (int y = 0; y < solid.height(); ++y) {
    for (int x = 0; x < solid.width(); ++x) {
      g.update_cell({x, y}, solid.at(x, y) != 0 ? config.log_odds_max : config.log_odds_min);
    }
  }
  return g;
}

}  // namespace lgv::perception
