#include "perception/costmap2d.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace lgv::perception {

Costmap2D::Costmap2D(Point2D origin, double width_m, double height_m,
                     CostmapConfig config)
    : config_(config) {
  frame_.origin = origin;
  frame_.resolution = config.resolution;
  const int w = static_cast<int>(std::ceil(width_m / config.resolution));
  const int h = static_cast<int>(std::ceil(height_m / config.resolution));
  const uint8_t fill = config.track_unknown ? kCostNoInformation : kCostFreeSpace;
  static_layer_ = Grid<uint8_t>(w, h, fill);
  obstacle_layer_ = Grid<uint8_t>(w, h, kCostNoInformation);
  cost_ = Grid<uint8_t>(w, h, fill);
}

uint8_t Costmap2D::cost_at(CellIndex c) const {
  return cost_.in_bounds(c) ? cost_.at(c) : kCostLethal;
}

uint8_t Costmap2D::cost_at_world(const Point2D& p) const {
  return cost_at(frame_.world_to_cell(p));
}

bool Costmap2D::is_traversable(CellIndex c) const {
  const uint8_t v = cost_at(c);
  return v < kCostInscribed;  // unknown (255) and lethal excluded
}

void Costmap2D::set_static_map(const msg::OccupancyGridMsg& map) {
  // Resample the incoming map into this costmap's frame.
  for (int y = 0; y < cost_.height(); ++y) {
    for (int x = 0; x < cost_.width(); ++x) {
      const Point2D w = frame_.cell_to_world({x, y});
      const CellIndex src = map.frame.world_to_cell(w);
      uint8_t v = config_.track_unknown ? kCostNoInformation : kCostFreeSpace;
      if (src.x >= 0 && src.x < map.width && src.y >= 0 && src.y < map.height) {
        const int8_t occ = map.at(src.x, src.y);
        if (occ >= 65) {
          v = kCostLethal;
        } else if (occ >= 0) {
          v = kCostFreeSpace;
        }
      }
      static_layer_.at(x, y) = v;
    }
  }
}

uint8_t Costmap2D::inflation_cost(double d) const {
  if (d <= config_.inscribed_radius) return kCostInscribed;
  if (d > config_.inflation_radius) return kCostFreeSpace;
  // Exponential decay from the inscribed radius (costmap_2d formula).
  const double factor =
      std::exp(-config_.cost_scaling * (d - config_.inscribed_radius));
  return static_cast<uint8_t>(static_cast<double>(kCostInscribed - 1) * factor);
}

void Costmap2D::mark_and_clear(const Pose2D& pose, const msg::LaserScan& scan,
                               CostmapUpdateStats& stats) {
  const CellIndex origin_cell = frame_.world_to_cell(pose.position());
  for (size_t i = 0; i < scan.ranges.size(); ++i) {
    const double r = static_cast<double>(scan.ranges[i]);
    const bool hit = r <= scan.range_max && r >= scan.range_min;
    const double reach = std::min(hit ? r : scan.range_max, config_.raytrace_range);
    const double angle = pose.theta + scan.angle_of(i);
    const Point2D end{pose.x + std::cos(angle) * reach, pose.y + std::sin(angle) * reach};
    const auto cells = bresenham_line(origin_cell, frame_.world_to_cell(end));
    const size_t n_clear = cells.size() - (hit ? 1 : 0);
    for (size_t k = 0; k < n_clear; ++k) {
      if (obstacle_layer_.in_bounds(cells[k])) {
        obstacle_layer_.at(cells[k]) = kCostFreeSpace;
      }
    }
    if (hit && reach <= config_.obstacle_range) {
      const CellIndex c = cells.back();
      if (obstacle_layer_.in_bounds(c)) obstacle_layer_.at(c) = kCostLethal;
    }
    stats.raytraced_cells += cells.size();
  }
}

size_t Costmap2D::inflate() {
  // Combine static + obstacle layers, then run a BFS wavefront outward from
  // every lethal cell up to the inflation radius.
  const int w = cost_.width(), h = cost_.height();
  struct Seed {
    CellIndex cell;
    CellIndex source;
  };
  std::queue<Seed> frontier;
  Grid<uint8_t> visited(w, h, 0);

  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const uint8_t s = static_layer_.at(x, y);
      const uint8_t o = obstacle_layer_.at(x, y);
      uint8_t v;
      if (s == kCostLethal || o == kCostLethal) {
        v = kCostLethal;
      } else if (o == kCostFreeSpace) {
        // A beam raytraced through: known free, even where the static map
        // had no information.
        v = kCostFreeSpace;
      } else {
        v = s;  // static free / unknown
      }
      cost_.at(x, y) = v;
      if (v == kCostLethal) {
        frontier.push({{x, y}, {x, y}});
        visited.at(x, y) = 1;
      }
    }
  }

  size_t processed = 0;
  const int max_steps =
      static_cast<int>(std::ceil(config_.inflation_radius / frame_.resolution)) + 1;
  while (!frontier.empty()) {
    const Seed s = frontier.front();
    frontier.pop();
    ++processed;
    constexpr int dx[] = {1, -1, 0, 0, 1, 1, -1, -1};
    constexpr int dy[] = {0, 0, 1, -1, 1, -1, 1, -1};
    for (int k = 0; k < 8; ++k) {
      const CellIndex n{s.cell.x + dx[k], s.cell.y + dy[k]};
      if (!cost_.in_bounds(n) || visited.at(n) != 0) continue;
      if (std::abs(n.x - s.source.x) > max_steps || std::abs(n.y - s.source.y) > max_steps)
        continue;
      const double d =
          distance(frame_.cell_to_world(n), frame_.cell_to_world(s.source));
      if (d > config_.inflation_radius) continue;
      visited.at(n) = 1;
      const uint8_t c = inflation_cost(d);
      uint8_t& cell = cost_.at(n);
      if (cell != kCostLethal && (cell == kCostNoInformation ? c >= kCostInscribed
                                                             : c > cell)) {
        cell = c;
      } else if (cell == kCostNoInformation && c < kCostInscribed) {
        // Leave unknown cells unknown unless the inflation makes them unsafe.
      }
      frontier.push({n, s.source});
    }
  }
  return processed;
}

CostmapUpdateStats Costmap2D::update(const Pose2D& pose, const msg::LaserScan& scan) {
  CostmapUpdateStats stats;
  mark_and_clear(pose, scan, stats);
  stats.inflated_cells = inflate();
  return stats;
}

msg::OccupancyGridMsg Costmap2D::to_msg(double stamp) const {
  msg::OccupancyGridMsg m;
  m.header.stamp = stamp;
  m.header.frame_id = "costmap";
  m.frame = frame_;
  m.width = cost_.width();
  m.height = cost_.height();
  m.data.resize(static_cast<size_t>(m.width) * m.height);
  for (int y = 0; y < m.height; ++y) {
    for (int x = 0; x < m.width; ++x) {
      const uint8_t v = cost_.at(x, y);
      int8_t out;
      if (v == kCostNoInformation) {
        out = msg::kUnknownCell;
      } else {
        out = static_cast<int8_t>(std::lround(std::min<double>(v, kCostInscribed) /
                                              kCostInscribed * 100.0));
      }
      m.data[static_cast<size_t>(y) * m.width + x] = out;
    }
  }
  return m;
}

}  // namespace lgv::perception
