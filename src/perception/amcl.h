// Adaptive Monte Carlo Localization [41] against a known occupancy map — the
// Localization node of the with-a-map workload. KLD-style adaptation shrinks
// the particle set when the estimate is concentrated, which is why this node
// is so cheap in Table II (1% of cycles).
#pragma once

#include <vector>

#include "common/geometry.h"
#include "common/rng.h"
#include "common/soa.h"
#include "msg/messages.h"
#include "perception/likelihood_field.h"
#include "perception/occupancy_grid.h"
#include "perception/scan_matcher.h"
#include "platform/execution_context.h"

namespace lgv::perception {

struct AmclConfig {
  int min_particles = 80;
  int max_particles = 600;
  double motion_noise_trans = 0.03;
  double motion_noise_rot = 0.03;
  int beam_stride = 8;          ///< beams used by the measurement model
  double sigma_hit = 0.15;      ///< measurement model kernel (m)
  double z_hit = 0.85;          ///< weight of the hit component
  double z_rand = 0.15;         ///< uniform noise floor
  double resample_threshold = 0.5;
  /// KLD adaptation: target particle count ≈ kld_k × occupied pose bins.
  double kld_k = 6.0;
  double kld_bin_xy = 0.25;     ///< bin size (m)
  double kld_bin_theta = 0.25;  ///< bin size (rad)
  /// Measurement model through the map's LikelihoodField (endpoints
  /// precomputed once per scan, shared by every particle). When false, the
  /// brute-force reference model probes the 3×3 occupancy neighborhood per
  /// particle per beam.
  bool use_likelihood_field = true;
};

struct AmclUpdateStats {
  size_t beam_evaluations = 0;
  bool resampled = false;
  int particle_count = 0;
  double neff = 0.0;
};

class Amcl {
 public:
  Amcl(AmclConfig config, const OccupancyGrid* map, uint64_t seed = 0xa3c1);

  /// Concentrate particles around a known start pose.
  void initialize(const Pose2D& start, double spread_xy = 0.1, double spread_theta = 0.1);
  /// Scatter particles uniformly over the map's free space (global loc.).
  void initialize_global(size_t count);

  AmclUpdateStats update(const msg::Odometry& odom, const msg::LaserScan& scan,
                         platform::ExecutionContext& ctx);

  /// Weighted mean pose of the filter.
  Pose2D estimate() const;
  int particle_count() const { return static_cast<int>(poses_.size()); }
  const AmclConfig& config() const { return config_; }
  /// SoA particle poses (poses()[i] materializes a Pose2D).
  const PoseBlock& poses() const { return poses_; }
  const aligned_vector<double>& weights() const { return weights_; }

  /// Filter state for Algorithm 2 migration: poses, weights, and the odometry
  /// anchor. The known map is deliberately NOT shipped — both hosts hold it
  /// (it is static input, not filter state), which is AMCL's degenerate form
  /// of delta migration: the payload is already proportional to change.
  std::vector<uint8_t> serialize_state() const;
  void restore_state(const std::vector<uint8_t>& bytes);

 private:
  double measurement_weight(const Pose2D& pose, const msg::LaserScan& scan,
                            size_t* evals) const;
  double measurement_weight(const Pose2D& pose, const PrecomputedScan& pre,
                            size_t* evals) const;
  void resample_adaptive();

  AmclConfig config_;
  const OccupancyGrid* map_;
  /// Likelihood-field cache over *map_. Synced lazily at each update — a
  /// no-op while the (typically static) localization map is unchanged.
  LikelihoodField field_;
  PoseBlock poses_;
  aligned_vector<double> weights_;
  Rng rng_;
  bool have_last_odom_ = false;
  Pose2D last_odom_;
};

}  // namespace lgv::perception
