// Log-odds occupancy grid: the map representation maintained by each RBPF
// particle and published to the rest of the pipeline as OccupancyGridMsg.
#pragma once

#include <cstdint>

#include "common/geometry.h"
#include "common/grid.h"
#include "msg/messages.h"

namespace lgv::perception {

struct OccupancyGridConfig {
  double resolution = 0.1;     ///< m/cell (SLAM map; costmaps run finer)
  double log_odds_hit = 0.9;   ///< evidence added per occupied observation
  double log_odds_miss = -0.4; ///< evidence removed per free observation
  double log_odds_min = -4.0;
  double log_odds_max = 4.0;
  double occupied_threshold = 0.65;  ///< probability above which a cell is solid
  double free_threshold = 0.35;      ///< probability below which a cell is free
};

class OccupancyGrid {
 public:
  OccupancyGrid() = default;
  /// Fixed extent map covering [origin, origin + size] meters.
  OccupancyGrid(Point2D origin, double width_m, double height_m,
                OccupancyGridConfig config = {});

  const GridFrame& frame() const { return frame_; }
  int width() const { return log_odds_.width(); }
  int height() const { return log_odds_.height(); }
  const OccupancyGridConfig& config() const { return config_; }

  double log_odds_at(CellIndex c) const;
  double probability_at(CellIndex c) const;
  bool is_occupied(CellIndex c) const;
  bool is_free(CellIndex c) const;
  bool is_unknown(CellIndex c) const;
  bool in_bounds(CellIndex c) const { return log_odds_.in_bounds(c); }

  /// Integrate one scan taken from `pose`. Beams with range beyond
  /// max_usable clear only. Returns the number of cells touched (the work
  /// unit Fig. 6's map-update cost is charged by).
  size_t integrate_scan(const Pose2D& pose, const msg::LaserScan& scan);

  /// Known/unknown bookkeeping for exploration.
  size_t known_cells() const { return known_cells_; }
  double known_area_m2() const;

  msg::OccupancyGridMsg to_msg(double stamp) const;
  /// Rebuild from a message (used when the map migrates across hosts).
  static OccupancyGrid from_msg(const msg::OccupancyGridMsg& m,
                                OccupancyGridConfig config = {});

  /// Lossless state serialization (log-odds preserved exactly) — the wire
  /// format the Switcher ships during Algorithm 2 state migration.
  void serialize(WireWriter& w) const;
  static OccupancyGrid deserialize(WireReader& r);

  /// Seed from ground truth (tests & known-map navigation).
  static OccupancyGrid from_binary(const GridFrame& frame, const Grid<uint8_t>& solid,
                                   OccupancyGridConfig config = {});

 private:
  void update_cell(CellIndex c, double delta);

  GridFrame frame_;
  Grid<float> log_odds_;
  OccupancyGridConfig config_;
  size_t known_cells_ = 0;
};

}  // namespace lgv::perception
