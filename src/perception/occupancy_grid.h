// Log-odds occupancy grid: the map representation maintained by each RBPF
// particle and published to the rest of the pipeline as OccupancyGridMsg.
//
// State movement is designed to be proportional to *change*, not map area
// (docs/state-sync.md):
//   - the cell block lives behind a copy-on-write CowGrid, so copying a grid
//     (RBPF resample, migration snapshots) is O(1) until a copy writes;
//   - every mutation batch stamps a globally-unique write_version onto the
//     16×16 tiles it touches, so a delta against a retained snapshot only
//     scans tiles written since the snapshot;
//   - full snapshots RLE-encode the cell block (occupancy grids are long
//     runs of unknown/saturated cells), deltas ship only changed-cell runs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/geometry.h"
#include "common/grid.h"
#include "msg/messages.h"

namespace lgv::perception {

struct OccupancyGridConfig {
  double resolution = 0.1;     ///< m/cell (SLAM map; costmaps run finer)
  double log_odds_hit = 0.9;   ///< evidence added per occupied observation
  double log_odds_miss = -0.4; ///< evidence removed per free observation
  double log_odds_min = -4.0;
  double log_odds_max = 4.0;
  double occupied_threshold = 0.65;  ///< probability above which a cell is solid
  double free_threshold = 0.35;      ///< probability below which a cell is free
};

/// On-wire encoding of one grid record (first byte of the record).
enum class GridEncoding : uint8_t {
  kRaw = 0,    ///< full snapshot, cell block as raw floats (reference mode)
  kRle = 1,    ///< full snapshot, cell block as (run_len, value) runs
  kDelta = 2,  ///< changed-cell runs against a base snapshot the receiver holds
};

class OccupancyGrid {
 public:
  /// Side length of the change-tracking tiles (cells).
  static constexpr int kTileSize = 16;

  OccupancyGrid();
  /// Fixed extent map covering [origin, origin + size] meters.
  OccupancyGrid(Point2D origin, double width_m, double height_m,
                OccupancyGridConfig config = {});

  const GridFrame& frame() const { return frame_; }
  int width() const { return log_odds_.width(); }
  int height() const { return log_odds_.height(); }
  const OccupancyGridConfig& config() const { return config_; }

  double log_odds_at(CellIndex c) const;
  double probability_at(CellIndex c) const;
  bool is_occupied(CellIndex c) const;
  bool is_free(CellIndex c) const;
  bool is_unknown(CellIndex c) const;
  bool in_bounds(CellIndex c) const { return log_odds_.in_bounds(c); }

  /// Integrate one scan taken from `pose`. Beams with range beyond
  /// max_usable clear only. Returns the number of cells touched (the work
  /// unit Fig. 6's map-update cost is charged by).
  size_t integrate_scan(const Pose2D& pose, const msg::LaserScan& scan);

  /// Known/unknown bookkeeping for exploration.
  size_t known_cells() const { return known_cells_; }
  double known_area_m2() const;

  // ---- Change tracking (consumed by LikelihoodField::sync) -----------------
  // Every time a cell's occupied or unknown classification flips, the cell is
  // appended to a bounded changelog and the change version increments. A
  // derived structure that remembers (map_id, change_version) can tell whether
  // it is current, cheaply catch up through the changelog, or must rebuild
  // from scratch (changelog overflowed, or it was built from another map).
  // The changelog is in-memory state only: it is copied with the grid (so a
  // resampled particle's field stays consistent with its map copy) but never
  // serialized — across Algorithm 2 migration, derived fields rebuild.

  /// Identity of this grid's mutation history. Copies share the id (their
  /// histories are identical up to the copy point); grids built fresh —
  /// constructors, from_msg, from_binary, and every deserialize path — get a
  /// new id, so a field synced against one grid can never claim to be
  /// current for a different grid at a coincidentally-equal change version.
  /// (Migration lineage is tracked by write_version instead, which is
  /// globally unique and therefore needs no id qualifier.)
  uint64_t map_id() const { return map_id_; }
  /// Total classification flips ever applied (monotone).
  uint64_t change_version() const { return change_version_; }
  /// Version before the oldest retained changelog entry; entry i of
  /// changelog() is the flip that produced version changelog_base()+i+1.
  uint64_t changelog_base() const { return changelog_base_; }
  const std::vector<CellIndex>& changelog() const {
    static const std::vector<CellIndex> kEmptyLog;
    return changelog_ == nullptr ? kEmptyLog : *changelog_;
  }

  // ---- Value-level change tracking (consumed by the delta codec) -----------
  // Orthogonal to the classification changelog above: every mutation batch
  // (integrate_scan, from_msg/from_binary fill, delta apply) draws one stamp
  // from a process-global counter and stamps it onto the 16×16 tiles whose
  // cell values it actually changes. Because stamps are globally unique,
  // a write_version identifies one exact grid *state*: unmutated copies
  // share it, and any write diverges it. A delta against a snapshot at
  // write_version V only has to scan tiles stamped after V.

  /// Stamp of the most recent mutation batch (globally unique per state).
  uint64_t write_version() const { return write_version_; }
  /// Number of tiles written since `base_version` (delta cost estimate).
  size_t dirty_tiles_since(uint64_t base_version) const;
  size_t tile_count() const { return tile_versions_.size(); }

  /// Record that the *current* state is the base the last committed migration
  /// shipped: subsequent serialize_delta calls encode against it. The marker
  /// rides along with copies (a resampled particle's map still knows which
  /// committed state it descends from); writes never change it.
  void mark_delta_base() { delta_base_version_ = write_version_; }
  /// write_version of the committed base this grid descends from (0 = none).
  uint64_t delta_base_version() const { return delta_base_version_; }

  /// True when both grids still alias one cell block (no write since copy).
  bool shares_cells_with(const OccupancyGrid& o) const {
    return log_odds_.shares_storage_with(o.log_odds_);
  }
  /// Force private copies of the shared blocks now (deep-copy reference mode
  /// for the CoW benchmarks).
  void unshare() {
    log_odds_.unshare();
    tile_versions_.unshare();
  }

  msg::OccupancyGridMsg to_msg(double stamp) const;
  /// Rebuild from a message (used when the map migrates across hosts).
  static OccupancyGrid from_msg(const msg::OccupancyGridMsg& m,
                                OccupancyGridConfig config = {});

  // ---- Lossless state serialization (docs/state-sync.md) -------------------
  // The wire format the Switcher ships during Algorithm 2 state migration.
  // Every record starts with a GridEncoding byte; log-odds are preserved
  // exactly in all modes.

  /// Full snapshot (kRaw or kRle). kRle is the default wire mode; kRaw is
  /// kept as the reference encoding and for incompressible grids.
  void serialize(WireWriter& w, GridEncoding encoding = GridEncoding::kRle) const;
  /// Decode a full snapshot (throws std::runtime_error on a kDelta record —
  /// deltas need a base, use deserialize_any).
  static OccupancyGrid deserialize(WireReader& r);

  /// Delta record against `base`, which must be an unmutated snapshot of a
  /// state this grid descends from (see mark_delta_base / Gmapping's commit
  /// protocol). Encodes runs of cells whose values differ, found by scanning
  /// only tiles written after the base. Requires can_delta_against(base).
  void serialize_delta(WireWriter& w, const OccupancyGrid& base) const;
  bool can_delta_against(const OccupancyGrid& base) const;

  /// Decode any record. For kDelta, `base_lookup(base_write_version)` must
  /// return the receiver's replica of the base state (or nullptr — decode
  /// then throws std::runtime_error); write_version stamps are process-unique
  /// and preserved across serialization, so the stamp alone names the state.
  /// The replica is cloned (O(1), CoW) and the runs applied to the clone.
  using BaseLookup = std::function<const OccupancyGrid*(uint64_t write_version)>;
  static OccupancyGrid deserialize_any(WireReader& r, const BaseLookup& base_lookup);

  /// Seed from ground truth (tests & known-map navigation).
  static OccupancyGrid from_binary(const GridFrame& frame, const Grid<uint8_t>& solid,
                                   OccupancyGridConfig config = {});

 private:
  void update_cell(CellIndex c, double delta);
  /// Cache the classification thresholds in log-odds space and stamp a fresh
  /// map identity. Called by every construction path.
  void init_derived_state();
  bool occupied_log_odds(double l) const { return l > occupied_log_odds_; }
  void record_flip(CellIndex c);
  /// Writable changelog; clones the shared block first when aliased.
  std::vector<CellIndex>& mutable_changelog();
  /// Open a new mutation batch: draw a fresh global write_version stamp.
  void begin_mutation_batch();
  /// Stamp the tile containing cell `c` with the current batch version.
  void touch_tile(CellIndex c);
  int tiles_wide() const { return tile_versions_.width(); }
  void serialize_header(WireWriter& w) const;
  void deserialize_header(WireReader& r);
  void apply_delta_body(WireReader& r);

  GridFrame frame_;
  CowGrid<float> log_odds_;
  OccupancyGridConfig config_;
  size_t known_cells_ = 0;

  // Classification thresholds mapped into log-odds space so is_occupied /
  // is_free are a compare, not an exp. p > t  ⟺  log-odds > log(t/(1−t)).
  double occupied_log_odds_ = 0.0;
  double free_log_odds_ = 0.0;

  // Change tracking (see accessors above). Capped: on overflow the log is
  // dropped and consumers fall back to a full rebuild.
  static constexpr size_t kChangelogCap = 4096;
  uint64_t map_id_ = 0;
  uint64_t change_version_ = 0;
  uint64_t changelog_base_ = 0;
  /// Shared copy-on-write, like the cell block: a particle copy must be O(1),
  /// and at the 4096-entry cap a deep changelog copy would otherwise dominate
  /// the resample. Null means empty.
  std::shared_ptr<std::vector<CellIndex>> changelog_;

  // Value-level change tracking for the delta codec. tile_versions_ is
  // ceil(w/16) × ceil(h/16); entry (tx, ty) holds the write_version of the
  // last batch that changed a cell value inside that tile.
  CowGrid<uint64_t> tile_versions_;
  uint64_t write_version_ = 0;
  uint64_t delta_base_version_ = 0;
};

}  // namespace lgv::perception
