// Log-odds occupancy grid: the map representation maintained by each RBPF
// particle and published to the rest of the pipeline as OccupancyGridMsg.
#pragma once

#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "common/grid.h"
#include "msg/messages.h"

namespace lgv::perception {

struct OccupancyGridConfig {
  double resolution = 0.1;     ///< m/cell (SLAM map; costmaps run finer)
  double log_odds_hit = 0.9;   ///< evidence added per occupied observation
  double log_odds_miss = -0.4; ///< evidence removed per free observation
  double log_odds_min = -4.0;
  double log_odds_max = 4.0;
  double occupied_threshold = 0.65;  ///< probability above which a cell is solid
  double free_threshold = 0.35;      ///< probability below which a cell is free
};

class OccupancyGrid {
 public:
  OccupancyGrid();
  /// Fixed extent map covering [origin, origin + size] meters.
  OccupancyGrid(Point2D origin, double width_m, double height_m,
                OccupancyGridConfig config = {});

  const GridFrame& frame() const { return frame_; }
  int width() const { return log_odds_.width(); }
  int height() const { return log_odds_.height(); }
  const OccupancyGridConfig& config() const { return config_; }

  double log_odds_at(CellIndex c) const;
  double probability_at(CellIndex c) const;
  bool is_occupied(CellIndex c) const;
  bool is_free(CellIndex c) const;
  bool is_unknown(CellIndex c) const;
  bool in_bounds(CellIndex c) const { return log_odds_.in_bounds(c); }

  /// Integrate one scan taken from `pose`. Beams with range beyond
  /// max_usable clear only. Returns the number of cells touched (the work
  /// unit Fig. 6's map-update cost is charged by).
  size_t integrate_scan(const Pose2D& pose, const msg::LaserScan& scan);

  /// Known/unknown bookkeeping for exploration.
  size_t known_cells() const { return known_cells_; }
  double known_area_m2() const;

  // ---- Change tracking (consumed by LikelihoodField::sync) -----------------
  // Every time a cell's occupied or unknown classification flips, the cell is
  // appended to a bounded changelog and the change version increments. A
  // derived structure that remembers (map_id, change_version) can tell whether
  // it is current, cheaply catch up through the changelog, or must rebuild
  // from scratch (changelog overflowed, or it was built from another map).
  // The changelog is in-memory state only: it is copied with the grid (so a
  // resampled particle's field stays consistent with its map copy) but never
  // serialized — across Algorithm 2 migration, derived fields rebuild.

  /// Identity of this grid's mutation history. Copies share the id (their
  /// histories are identical up to the copy point); grids built fresh —
  /// constructors, from_msg, from_binary, deserialize — get a new id.
  uint64_t map_id() const { return map_id_; }
  /// Total classification flips ever applied (monotone).
  uint64_t change_version() const { return change_version_; }
  /// Version before the oldest retained changelog entry; entry i of
  /// changelog() is the flip that produced version changelog_base()+i+1.
  uint64_t changelog_base() const { return changelog_base_; }
  const std::vector<CellIndex>& changelog() const { return changelog_; }

  msg::OccupancyGridMsg to_msg(double stamp) const;
  /// Rebuild from a message (used when the map migrates across hosts).
  static OccupancyGrid from_msg(const msg::OccupancyGridMsg& m,
                                OccupancyGridConfig config = {});

  /// Lossless state serialization (log-odds preserved exactly) — the wire
  /// format the Switcher ships during Algorithm 2 state migration.
  void serialize(WireWriter& w) const;
  static OccupancyGrid deserialize(WireReader& r);

  /// Seed from ground truth (tests & known-map navigation).
  static OccupancyGrid from_binary(const GridFrame& frame, const Grid<uint8_t>& solid,
                                   OccupancyGridConfig config = {});

 private:
  void update_cell(CellIndex c, double delta);
  /// Cache the classification thresholds in log-odds space and stamp a fresh
  /// map identity. Called by every construction path.
  void init_derived_state();
  bool occupied_log_odds(double l) const { return l > occupied_log_odds_; }
  void record_flip(CellIndex c);

  GridFrame frame_;
  Grid<float> log_odds_;
  OccupancyGridConfig config_;
  size_t known_cells_ = 0;

  // Classification thresholds mapped into log-odds space so is_occupied /
  // is_free are a compare, not an exp. p > t  ⟺  log-odds > log(t/(1−t)).
  double occupied_log_odds_ = 0.0;
  double free_log_odds_ = 0.0;

  // Change tracking (see accessors above). Capped: on overflow the log is
  // dropped and consumers fall back to a full rebuild.
  static constexpr size_t kChangelogCap = 4096;
  uint64_t map_id_ = 0;
  uint64_t change_version_ = 0;
  uint64_t changelog_base_ = 0;
  std::vector<CellIndex> changelog_;
};

}  // namespace lgv::perception
