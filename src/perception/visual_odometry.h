// Vision-based localization for camera LGVs (§IX "Other robotic devices"):
// the paper notes its strategies transfer to vision-based LGVs, with one new
// effect — localization failure when the scene changes faster than features
// can be tracked, requiring a lower driving speed.
//
// This module implements that substrate: a pinhole-style 2D camera that
// observes point landmarks (corners extracted from the world), a
// frame-to-frame tracker that matches landmarks by id, and a pose update via
// closed-form 2D rigid alignment (Kabsch/Umeyama in the plane) of the
// matched sets. Tracking genuinely fails under fast rotation or low feature
// density — the co-visible set shrinks below the minimum — at which point
// the estimate free-runs on odometry until a successful relocalization.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/geometry.h"
#include "common/rng.h"
#include "platform/execution_context.h"
#include "sim/world.h"

namespace lgv::perception {

/// A point landmark with a stable identity (a visual corner).
struct Landmark {
  uint32_t id = 0;
  Point2D position;  ///< world frame
};

/// Extract corner-like landmarks from the world: occupied cells with at
/// least two free 4-neighbors (convex corners of walls and furniture).
std::vector<Landmark> extract_landmarks(const sim::World& world);

struct CameraConfig {
  double fov_rad = 2.0;         ///< ~115° wide-angle forward field of view
  double max_range = 6.0;       ///< feature detection range
  double pixel_noise = 0.01;    ///< measurement noise on bearings/ranges (m)
  /// Per-frame detection probability of a visible landmark (texture/blur).
  double detection_probability = 0.95;
};

/// One camera frame: landmarks seen this frame, measured in the ROBOT frame.
struct VisualFrame {
  double stamp = 0.0;
  std::vector<uint32_t> ids;
  std::vector<Point2D> observations;  ///< robot-frame positions
};

/// Simulated forward camera: projects world landmarks into the robot frame,
/// respecting FOV, range and line of sight.
class Camera {
 public:
  Camera(CameraConfig config, std::vector<Landmark> landmarks, uint64_t seed = 0xca3);

  VisualFrame capture(const sim::World& world, const Pose2D& pose, double stamp);

  const CameraConfig& config() const { return config_; }
  size_t landmark_count() const { return landmarks_.size(); }

 private:
  CameraConfig config_;
  std::vector<Landmark> landmarks_;
  Rng rng_;
};

struct VisualOdometryConfig {
  int min_matches = 3;          ///< matched landmarks needed for a pose update
  double max_match_jump = 0.8;  ///< reject matches moving implausibly far (m)
};

struct VoUpdateStats {
  size_t matches = 0;
  bool tracked = false;   ///< pose updated from vision this frame
  size_t frames_lost = 0; ///< consecutive tracking failures so far
};

/// Frame-to-frame visual odometry with landmark-map relocalization: pose is
/// estimated by rigidly aligning the current frame's robot-frame
/// observations to the landmark map. Between successful updates the estimate
/// free-runs on the odometry delta supplied by the caller.
class VisualOdometry {
 public:
  VisualOdometry(VisualOdometryConfig config, std::vector<Landmark> map);

  void initialize(const Pose2D& start);

  /// One frame: dead-reckon by `odom_delta` (body frame), then correct from
  /// the frame's landmark observations when enough match. Work is charged to
  /// `ctx` (per-landmark association + alignment).
  VoUpdateStats update(const Pose2D& odom_delta, const VisualFrame& frame,
                       platform::ExecutionContext& ctx);

  const Pose2D& pose() const { return pose_; }
  bool lost() const { return frames_lost_ >= 3; }
  size_t frames_lost() const { return frames_lost_; }

  /// Closed-form 2D rigid alignment: the pose T minimizing Σ|T·body_i −
  /// world_i|². Exposed for tests. Returns nullopt for < 2 pairs.
  static std::optional<Pose2D> align(const std::vector<Point2D>& body,
                                     const std::vector<Point2D>& world);

 private:
  VisualOdometryConfig config_;
  std::vector<Landmark> map_;  ///< sorted by id for O(log n) association
  Pose2D pose_;
  size_t frames_lost_ = 0;
};

/// §IX's driving constraint: the largest angular rate at which two
/// consecutive frames (period dt) still share at least `min_matches`
/// landmarks of a FOV `fov`: rotating by more than (fov − margin) per frame
/// guarantees loss. Used by the Controller to cap ω for vision LGVs.
double max_trackable_angular_rate(double fov_rad, double frame_period_s,
                                  double safety_margin = 0.5);

}  // namespace lgv::perception
