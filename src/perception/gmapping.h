// Rao-Blackwellized particle filter SLAM in the style of GMapping [42], with
// the paper's Fig. 6 parallelization: each thread-pool worker runs scanMatch
// (and map integration) for its share of the M particles; the weight-tree
// update and resampling stay sequential on the main thread.
#pragma once

#include <map>
#include <vector>

#include "common/geometry.h"
#include "common/rng.h"
#include "common/soa.h"
#include "msg/messages.h"
#include "perception/likelihood_field.h"
#include "perception/occupancy_grid.h"
#include "perception/scan_matcher.h"
#include "platform/execution_context.h"

namespace lgv::perception {

struct GmappingConfig {
  int particles = 30;  ///< M — the accuracy/cost knob swept in Fig. 9
  double motion_noise_trans = 0.02;  ///< m of noise per meter traveled
  double motion_noise_rot = 0.02;    ///< rad of noise per rad turned
  double motion_noise_mix = 0.01;    ///< cross terms
  /// Resample when Neff / M drops below this (selective resampling [42]).
  double resample_threshold = 0.5;
  OccupancyGridConfig map;
  ScanMatcherConfig matcher;
};

/// Per-particle heavy state. The hot scalars (pose, weights) live in SoA
/// arrays on the filter (see Gmapping::poses()/weights()/log_weights()) so
/// the sequential weight/resample phases stream contiguous memory; Particle
/// keeps only the map and its derived caches.
struct Particle {
  OccupancyGrid map;
  /// Derived likelihood-field cache over `map`. Copied together with the map
  /// during resampling (so the pair stays consistent); never serialized —
  /// restore_state leaves it empty and the next scanMatch rebuilds it.
  LikelihoodField field;
  Rng rng{0};
};

/// Wire mode for serialize_state (each grid record is self-describing, so
/// the receiver needs no mode flag — this only selects what the sender emits).
enum class StateEncoding : uint8_t {
  kFullRaw,  ///< full snapshots, raw cell blocks (reference encoding)
  kFull,     ///< full snapshots, RLE cell blocks (cold-start wire default)
  kDelta,    ///< per-particle deltas against the last *committed* migration,
             ///< falling back to full RLE per grid when no base works
};

/// What the last serialize_state call actually emitted (per-grid decisions).
struct StateCodecStats {
  size_t grids_full = 0;
  size_t grids_delta = 0;
  size_t fallback_no_base = 0;   ///< no committed base for this lineage
  size_t fallback_overflow = 0;  ///< dirty region too large, delta skipped
  size_t fallback_larger = 0;    ///< delta encoded, but full RLE was smaller
  size_t bytes = 0;              ///< total encoded payload size

  double delta_hit_ratio() const {
    const size_t n = grids_full + grids_delta;
    return n == 0 ? 0.0 : static_cast<double>(grids_delta) / static_cast<double>(n);
  }
};

/// Statistics of one SLAM update (also the source of its work accounting).
struct SlamUpdateStats {
  size_t beam_evaluations = 0;  ///< scanMatch work across all particles
  size_t map_cells_updated = 0;
  size_t field_cells_rebuilt = 0;  ///< likelihood-field maintenance work
  bool resampled = false;
  double neff = 0.0;
};

class Gmapping {
 public:
  /// The map extent must be fixed up front (all particle maps share it).
  Gmapping(GmappingConfig config, Point2D map_origin, double width_m, double height_m,
           uint64_t seed = 0x51a);

  const GmappingConfig& config() const { return config_; }
  int particle_count() const { return static_cast<int>(particles_.size()); }

  /// Seed every particle at `start` and integrate nothing yet.
  void initialize(const Pose2D& start);

  /// One SLAM iteration: motion-sample each particle from the odometry
  /// delta, scanMatch-refine, weight, selectively resample, and integrate the
  /// scan into each surviving particle's map. The per-particle phase runs
  /// through ctx.parallel_kernel (Fig. 6); resampling is sequential.
  SlamUpdateStats process(const msg::Odometry& odom, const msg::LaserScan& scan,
                          platform::ExecutionContext& ctx);

  /// Highest-weight particle's pose — what Localization publishes.
  Pose2D best_pose() const;
  const OccupancyGrid& best_map() const;
  double neff() const { return neff_; }
  const std::vector<Particle>& particles() const { return particles_; }
  /// SoA hot state, index-aligned with particles().
  const PoseBlock& poses() const { return poses_; }
  const aligned_vector<double>& weights() const { return weights_; }
  const aligned_vector<double>& log_weights() const { return log_weights_; }

  /// Effective number of particles for a weight vector (exposed for tests).
  static double effective_sample_size(const std::vector<double>& weights);

  /// Full filter state (poses, weights, per-particle maps) — what the
  /// Switcher actually ships when Algorithm 2 migrates the SLAM node.
  /// The receiving side restores into an equivalently-configured instance.
  /// kDelta encodes each particle's map against the snapshot retained at the
  /// last committed migration where possible (see mark_migration_committed);
  /// restore_state decodes deltas against the receiver's own replicas of
  /// those states, so it only works when the previous committed transfer was
  /// restored into the same instance.
  std::vector<uint8_t> serialize_state(StateEncoding encoding = StateEncoding::kFull) const;
  void restore_state(const std::vector<uint8_t>& bytes);

  /// Record that the state most recently serialized made it across and was
  /// committed (Switcher::migrate_state's commit record): retain an O(1) CoW
  /// snapshot of every particle map and mark it as the delta base for future
  /// kDelta encodes. MUST NOT be called for an aborted transfer — the delta
  /// base only ever advances to states the receiver provably holds.
  void mark_migration_committed();
  /// Per-grid encode decisions of the most recent serialize_state call.
  const StateCodecStats& last_codec_stats() const { return last_codec_stats_; }

 private:
  void normalize_weights();
  void resample();
  size_t best_index() const;

  GmappingConfig config_;
  std::vector<Particle> particles_;
  /// Hot per-particle scalars, index-aligned with particles_.
  PoseBlock poses_;
  aligned_vector<double> log_weights_;
  aligned_vector<double> weights_;
  ScanMatcher matcher_;
  Rng rng_;
  bool have_last_odom_ = false;
  Pose2D last_odom_;
  double neff_ = 0.0;

  /// Snapshots of the particle maps as of the last committed migration,
  /// keyed by write_version (copies of one ancestor share the stamp, so
  /// duplicates collapse). CoW keeps these O(1) to take; each costs one
  /// deferred map copy the first time the live particle writes again.
  std::map<uint64_t, OccupancyGrid> committed_bases_;
  mutable StateCodecStats last_codec_stats_;
};

}  // namespace lgv::perception
