// Rao-Blackwellized particle filter SLAM in the style of GMapping [42], with
// the paper's Fig. 6 parallelization: each thread-pool worker runs scanMatch
// (and map integration) for its share of the M particles; the weight-tree
// update and resampling stay sequential on the main thread.
#pragma once

#include <vector>

#include "common/geometry.h"
#include "common/rng.h"
#include "msg/messages.h"
#include "perception/likelihood_field.h"
#include "perception/occupancy_grid.h"
#include "perception/scan_matcher.h"
#include "platform/execution_context.h"

namespace lgv::perception {

struct GmappingConfig {
  int particles = 30;  ///< M — the accuracy/cost knob swept in Fig. 9
  double motion_noise_trans = 0.02;  ///< m of noise per meter traveled
  double motion_noise_rot = 0.02;    ///< rad of noise per rad turned
  double motion_noise_mix = 0.01;    ///< cross terms
  /// Resample when Neff / M drops below this (selective resampling [42]).
  double resample_threshold = 0.5;
  OccupancyGridConfig map;
  ScanMatcherConfig matcher;
};

struct Particle {
  Pose2D pose;
  double log_weight = 0.0;
  double weight = 0.0;
  OccupancyGrid map;
  /// Derived likelihood-field cache over `map`. Copied together with the map
  /// during resampling (so the pair stays consistent); never serialized —
  /// restore_state leaves it empty and the next scanMatch rebuilds it.
  LikelihoodField field;
  Rng rng{0};
};

/// Statistics of one SLAM update (also the source of its work accounting).
struct SlamUpdateStats {
  size_t beam_evaluations = 0;  ///< scanMatch work across all particles
  size_t map_cells_updated = 0;
  size_t field_cells_rebuilt = 0;  ///< likelihood-field maintenance work
  bool resampled = false;
  double neff = 0.0;
};

class Gmapping {
 public:
  /// The map extent must be fixed up front (all particle maps share it).
  Gmapping(GmappingConfig config, Point2D map_origin, double width_m, double height_m,
           uint64_t seed = 0x51a);

  const GmappingConfig& config() const { return config_; }
  int particle_count() const { return static_cast<int>(particles_.size()); }

  /// Seed every particle at `start` and integrate nothing yet.
  void initialize(const Pose2D& start);

  /// One SLAM iteration: motion-sample each particle from the odometry
  /// delta, scanMatch-refine, weight, selectively resample, and integrate the
  /// scan into each surviving particle's map. The per-particle phase runs
  /// through ctx.parallel_kernel (Fig. 6); resampling is sequential.
  SlamUpdateStats process(const msg::Odometry& odom, const msg::LaserScan& scan,
                          platform::ExecutionContext& ctx);

  /// Highest-weight particle's pose — what Localization publishes.
  const Pose2D& best_pose() const;
  const OccupancyGrid& best_map() const;
  double neff() const { return neff_; }
  const std::vector<Particle>& particles() const { return particles_; }

  /// Effective number of particles for a weight vector (exposed for tests).
  static double effective_sample_size(const std::vector<double>& weights);

  /// Full filter state (poses, weights, per-particle maps) — what the
  /// Switcher actually ships when Algorithm 2 migrates the SLAM node.
  /// The receiving side restores into an equivalently-configured instance.
  std::vector<uint8_t> serialize_state() const;
  void restore_state(const std::vector<uint8_t>& bytes);

 private:
  void normalize_weights();
  void resample();
  size_t best_index() const;

  GmappingConfig config_;
  std::vector<Particle> particles_;
  ScanMatcher matcher_;
  Rng rng_;
  bool have_last_odom_ = false;
  Pose2D last_odom_;
  double neff_ = 0.0;
};

}  // namespace lgv::perception
