#include "perception/amcl.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "platform/calibration.h"

namespace lgv::perception {

namespace calib = platform::calib;

Amcl::Amcl(AmclConfig config, const OccupancyGrid* map, uint64_t seed)
    : config_(config), map_(map), rng_(seed) {}

void Amcl::initialize(const Pose2D& start, double spread_xy, double spread_theta) {
  poses_.clear();
  weights_.clear();
  const int n = std::min(config_.max_particles,
                         std::max(config_.min_particles, config_.min_particles * 2));
  for (int i = 0; i < n; ++i) {
    // Draw θ, then y, then x: the order the pre-SoA emplace_back evaluated its
    // arguments in, kept so seeded runs reproduce the same particle clouds.
    const double dtheta = rng_.gaussian(0.0, spread_theta);
    const double dy = rng_.gaussian(0.0, spread_xy);
    const double dx = rng_.gaussian(0.0, spread_xy);
    poses_.push_back({start.x + dx, start.y + dy, start.theta + dtheta});
  }
  weights_.assign(poses_.size(), 1.0 / static_cast<double>(poses_.size()));
  have_last_odom_ = false;
}

void Amcl::initialize_global(size_t count) {
  poses_.clear();
  const auto& f = map_->frame();
  const double w = map_->width() * f.resolution;
  const double h = map_->height() * f.resolution;
  while (poses_.size() < count) {
    const Point2D p{f.origin.x + rng_.uniform(0.0, w), f.origin.y + rng_.uniform(0.0, h)};
    if (map_->is_free(f.world_to_cell(p))) {
      poses_.push_back({p.x, p.y, rng_.uniform(-3.14159, 3.14159)});
    }
  }
  weights_.assign(poses_.size(), 1.0 / static_cast<double>(poses_.size()));
  have_last_odom_ = false;
}

double Amcl::measurement_weight(const Pose2D& pose, const msg::LaserScan& scan,
                                size_t* evals) const {
  double log_w = 0.0;
  for (size_t i = 0; i < scan.ranges.size(); i += static_cast<size_t>(config_.beam_stride)) {
    const double r = static_cast<double>(scan.ranges[i]);
    if (r > scan.range_max || r < scan.range_min) continue;
    ++(*evals);
    const double angle = pose.theta + scan.angle_of(i);
    const Point2D end{pose.x + std::cos(angle) * r, pose.y + std::sin(angle) * r};
    const CellIndex c = map_->frame().world_to_cell(end);
    // Likelihood-field style: closest occupied cell in the 3×3 neighborhood.
    double d2_min = 9.0 * config_.sigma_hit * config_.sigma_hit;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const CellIndex cc{c.x + dx, c.y + dy};
        if (!map_->is_occupied(cc)) continue;
        const double d = distance(map_->frame().cell_to_world(cc), end);
        d2_min = std::min(d2_min, d * d);
      }
    }
    const double p_hit =
        std::exp(-d2_min / (2.0 * config_.sigma_hit * config_.sigma_hit));
    log_w += std::log(config_.z_hit * p_hit + config_.z_rand + 1e-6);
  }
  return log_w;
}

double Amcl::measurement_weight(const Pose2D& pose, const PrecomputedScan& pre,
                                size_t* evals) const {
  double log_w = 0.0;
  const double cos_t = std::cos(pose.theta), sin_t = std::sin(pose.theta);
  const GridFrame& frame = field_.frame();
  *evals += pre.size();
  for (size_t i = 0; i < pre.size(); ++i) {
    const Point2D end{pose.x + cos_t * pre.end_x[i] - sin_t * pre.end_y[i],
                      pose.y + sin_t * pre.end_x[i] + cos_t * pre.end_y[i]};
    const CellIndex c = frame.world_to_cell(end);
    // Same capped min-d² the brute-force model computes, from the field's
    // occupancy mask instead of nine map probes.
    const double d2_min =
        std::min(9.0 * config_.sigma_hit * config_.sigma_hit,
                 field_.min_obstacle_d2(c, end));
    const double p_hit =
        std::exp(-d2_min / (2.0 * config_.sigma_hit * config_.sigma_hit));
    log_w += std::log(config_.z_hit * p_hit + config_.z_rand + 1e-6);
  }
  return log_w;
}

AmclUpdateStats Amcl::update(const msg::Odometry& odom, const msg::LaserScan& scan,
                             platform::ExecutionContext& ctx) {
  AmclUpdateStats stats;
  Pose2D delta;
  if (have_last_odom_) delta = last_odom_.between(odom.pose);
  last_odom_ = odom.pose;
  const bool first = !have_last_odom_;
  have_last_odom_ = true;

  const double trans = std::hypot(delta.x, delta.y);
  const double rot = std::abs(delta.theta);

  // The per-scan endpoint precomputation and field sync are shared by every
  // particle weighed below; sync is a no-op while the map is unchanged.
  size_t field_cells = 0;
  PrecomputedScan pre;
  if (config_.use_likelihood_field && !first) {
    field_cells = field_.sync(*map_);
    pre = precompute_scan(scan, config_.beam_stride, map_->frame().resolution);
  }

  // Motion sampling is inherently sequential over one RNG; it is cheap
  // (Table II: ~1%), so AMCL stays single-threaded as in the paper.
  std::vector<double> log_weights(poses_.size(), 0.0);
  size_t evals = 0;
  for (size_t i = 0; i < poses_.size(); ++i) {
    Pose2D noisy = delta;
    noisy.x += rng_.gaussian(0.0, config_.motion_noise_trans * trans + 1e-4);
    noisy.y += rng_.gaussian(0.0, config_.motion_noise_trans * trans * 0.5 + 1e-4);
    noisy.theta = normalize_angle(
        noisy.theta + rng_.gaussian(0.0, config_.motion_noise_rot * rot + 1e-4));
    const Pose2D moved = poses_.at(i).compose(noisy);
    poses_.set(i, moved);
    if (!first) {
      log_weights[i] = config_.use_likelihood_field
                           ? measurement_weight(moved, pre, &evals)
                           : measurement_weight(moved, scan, &evals);
    }
  }
  stats.beam_evaluations = evals;
  const double eval_cycles = config_.use_likelihood_field
                                 ? calib::kAmclCachedCyclesPerBeamEval
                                 : calib::kAmclCyclesPerBeamEval;
  ctx.serial_work(static_cast<double>(evals) * eval_cycles +
                  static_cast<double>(field_cells) * calib::kFieldRebuildCyclesPerCell +
                  static_cast<double>(poses_.size()) * calib::kAmclMotionCyclesPerParticle);

  // Normalize.
  const double max_log = *std::max_element(log_weights.begin(), log_weights.end());
  double sum = 0.0;
  for (size_t i = 0; i < poses_.size(); ++i) {
    weights_[i] *= std::exp(log_weights[i] - max_log);
    sum += weights_[i];
  }
  if (sum <= 1e-300) {
    weights_.assign(poses_.size(), 1.0 / static_cast<double>(poses_.size()));
  } else {
    for (double& w : weights_) w /= sum;
  }

  double sum_sq = 0.0;
  for (double w : weights_) sum_sq += w * w;
  stats.neff = sum_sq > 0 ? 1.0 / sum_sq : 0.0;

  if (stats.neff < config_.resample_threshold * static_cast<double>(poses_.size())) {
    resample_adaptive();
    stats.resampled = true;
  }
  stats.particle_count = particle_count();
  return stats;
}

void Amcl::resample_adaptive() {
  // KLD-style size adaptation: count occupied (x, y, θ) bins, target
  // kld_k × bins particles within [min, max].
  std::set<std::tuple<int, int, int>> bins;
  for (size_t i = 0; i < poses_.size(); ++i) {
    bins.insert(
        {static_cast<int>(std::floor(poses_.x()[i] / config_.kld_bin_xy)),
         static_cast<int>(std::floor(poses_.y()[i] / config_.kld_bin_xy)),
         static_cast<int>(std::floor(poses_.theta()[i] / config_.kld_bin_theta))});
  }
  const int target = std::clamp(
      static_cast<int>(config_.kld_k * static_cast<double>(bins.size())),
      config_.min_particles, config_.max_particles);

  PoseBlock next;
  next.reserve(static_cast<size_t>(target));
  const double step = 1.0 / static_cast<double>(target);
  double u = rng_.uniform(0.0, step);
  double cumulative = weights_[0];
  size_t i = 0;
  for (int k = 0; k < target; ++k) {
    const double t = u + static_cast<double>(k) * step;
    while (cumulative < t && i + 1 < poses_.size()) {
      ++i;
      cumulative += weights_[i];
    }
    next.push_back(poses_.at(i));
  }
  poses_ = std::move(next);
  weights_.assign(poses_.size(), 1.0 / static_cast<double>(poses_.size()));
}

std::vector<uint8_t> Amcl::serialize_state() const {
  WireWriter w;
  w.put_varint(poses_.size());
  w.put_bool(have_last_odom_);
  w.put_double(last_odom_.x);
  w.put_double(last_odom_.y);
  w.put_double(last_odom_.theta);
  for (size_t i = 0; i < poses_.size(); ++i) {
    w.put_double(poses_.x()[i]);
    w.put_double(poses_.y()[i]);
    w.put_double(poses_.theta()[i]);
  }
  w.put_repeated_double(weights_);
  return w.take();
}

void Amcl::restore_state(const std::vector<uint8_t>& bytes) {
  WireReader r(bytes);
  // Validate the particle count against the buffer before reserving — the
  // varint is attacker-controlled on the wire (same guard as Gmapping).
  const size_t n = r.get_count(3 * sizeof(double));
  have_last_odom_ = r.get_bool();
  const double ox = r.get_double();
  const double oy = r.get_double();
  const double oth = r.get_double();
  last_odom_ = {ox, oy, oth};
  PoseBlock poses;
  poses.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = r.get_double();
    const double y = r.get_double();
    const double th = r.get_double();
    poses.push_back({x, y, th});
  }
  const std::vector<double> weights = r.get_repeated_double();
  if (weights.size() != poses.size()) {
    throw std::out_of_range("amcl state: weight count mismatch");
  }
  poses_ = std::move(poses);
  weights_.assign(weights.begin(), weights.end());
}

Pose2D Amcl::estimate() const {
  double x = 0.0, y = 0.0, sc = 0.0, ss = 0.0;
  for (size_t i = 0; i < poses_.size(); ++i) {
    x += weights_[i] * poses_.x()[i];
    y += weights_[i] * poses_.y()[i];
    sc += weights_[i] * std::cos(poses_.theta()[i]);
    ss += weights_[i] * std::sin(poses_.theta()[i]);
  }
  return {x, y, std::atan2(ss, sc)};
}

}  // namespace lgv::perception
