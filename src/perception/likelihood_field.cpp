#include "perception/likelihood_field.h"

namespace lgv::perception {

int LikelihoodField::count_trailing_zeros(uint16_t v) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_ctz(v);
#else
  int k = 0;
  while ((v & 1u) == 0) {
    v >>= 1;
    ++k;
  }
  return k;
#endif
}

void LikelihoodField::rebuild_cell(const OccupancyGrid& map, CellIndex c) {
  uint16_t e = map.is_unknown(c) ? kUnknownBit : uint16_t{0};
  uint16_t bit = 1;
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx, bit = static_cast<uint16_t>(bit << 1)) {
      if (map.is_occupied({c.x + dx, c.y + dy})) e |= bit;
    }
  }
  if (cells_.at(c.x + 1, c.y + 1) != e) cells_.mut_at(c.x + 1, c.y + 1) = e;
}

size_t LikelihoodField::sync(const OccupancyGrid& map) {
  if (in_sync_with(map)) return 0;

  if (compatible_with(map) && synced_version_ >= map.changelog_base()) {
    // Incremental: a flipped cell changes the neighbor mask of every cell in
    // its 3×3 neighborhood (and its own unknown flag), so rebuild exactly
    // those. Duplicate entries are harmless — rebuild_cell is idempotent.
    const std::vector<CellIndex>& log = map.changelog();
    size_t rebuilt = 0;
    for (size_t i = synced_version_ - map.changelog_base(); i < log.size(); ++i) {
      const CellIndex q = log[i];
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          rebuild_cell(map, {q.x + dx, q.y + dy});
          ++rebuilt;
        }
      }
    }
    synced_version_ = map.change_version();
    return rebuilt;
  }

  // Full rebuild, pad ring included.
  frame_ = map.frame();
  width_ = map.width();
  height_ = map.height();
  cells_ = CowGrid<uint16_t>(width_ + 2, height_ + 2, 0);
  for (int y = -1; y <= height_; ++y) {
    for (int x = -1; x <= width_; ++x) {
      rebuild_cell(map, {x, y});
    }
  }
  map_id_ = map.map_id();
  synced_version_ = map.change_version();
  return cells_.size();
}

}  // namespace lgv::perception
