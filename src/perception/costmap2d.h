// Layered costmap in the style of ROS costmap_2d [43]: a static map layer, an
// obstacle layer that marks lidar hits and ray-trace-clears free space, and
// an inflation layer that spreads cost outward from lethal cells. This is the
// CostmapGen node — an Energy-Critical Node in both workloads (Table II) and
// the first hop of the Velocity-Dependent Path.
#pragma once

#include <cstdint>

#include "common/geometry.h"
#include "common/grid.h"
#include "msg/messages.h"
#include "perception/occupancy_grid.h"

namespace lgv::perception {

// Cost value conventions (costmap_2d compatible).
inline constexpr uint8_t kCostLethal = 254;
inline constexpr uint8_t kCostInscribed = 253;
inline constexpr uint8_t kCostFreeSpace = 0;
inline constexpr uint8_t kCostNoInformation = 255;

struct CostmapConfig {
  double resolution = 0.05;      ///< m/cell
  double inflation_radius = 0.4; ///< m beyond which no cost is added
  double inscribed_radius = 0.11;///< robot footprint radius
  double cost_scaling = 6.0;     ///< exponential decay rate of inflated cost
  double raytrace_range = 3.5;   ///< max clearing distance
  double obstacle_range = 3.3;   ///< max marking distance
  bool track_unknown = true;     ///< unknown cells get kCostNoInformation
};

struct CostmapUpdateStats {
  size_t raytraced_cells = 0;   ///< obstacle-layer work units
  size_t inflated_cells = 0;    ///< inflation-layer work units
};

class Costmap2D {
 public:
  Costmap2D() = default;
  Costmap2D(Point2D origin, double width_m, double height_m, CostmapConfig config = {});

  const CostmapConfig& config() const { return config_; }
  const GridFrame& frame() const { return frame_; }
  int width() const { return cost_.width(); }
  int height() const { return cost_.height(); }

  uint8_t cost_at(CellIndex c) const;
  uint8_t cost_at_world(const Point2D& p) const;
  /// Combined + inflated master grid; raw view for vectorized probe loops
  /// (off-grid probes must yield kCostLethal, matching cost_at).
  const Grid<uint8_t>& master() const { return cost_; }
  bool is_lethal(CellIndex c) const { return cost_at(c) >= kCostInscribed; }
  /// Traversable for planning: known and below the inscribed threshold.
  bool is_traversable(CellIndex c) const;

  /// Load the static layer from a SLAM map / ground-truth map message.
  void set_static_map(const msg::OccupancyGridMsg& map);

  /// Obstacle layer + inflation update from one scan at `pose`.
  CostmapUpdateStats update(const Pose2D& pose, const msg::LaserScan& scan);

  /// Re-run inflation from scratch (also called by update()).
  size_t inflate();

  msg::OccupancyGridMsg to_msg(double stamp) const;

 private:
  void mark_and_clear(const Pose2D& pose, const msg::LaserScan& scan,
                      CostmapUpdateStats& stats);
  uint8_t inflation_cost(double distance_m) const;

  GridFrame frame_;
  CostmapConfig config_;
  Grid<uint8_t> static_layer_;   ///< kCostLethal / kCostFreeSpace / kCostNoInformation
  /// kCostLethal where lidar currently sees obstacles, kCostFreeSpace where a
  /// beam has raytraced through, kCostNoInformation where never observed.
  Grid<uint8_t> obstacle_layer_;
  Grid<uint8_t> cost_;           ///< combined + inflated master grid
};

}  // namespace lgv::perception
