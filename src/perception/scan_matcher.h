// Hill-climbing scan matcher — the scanMatch kernel that dominates SLAM time
// (98% per §V). Scores a candidate pose by projecting (subsampled) beam
// endpoints into a map and rewarding endpoints that land on occupied cells
// with free space in front of them; refines the pose by greedy coordinate
// ascent over (x, y, θ) perturbations.
//
// Two scorers produce that score:
//  - the likelihood-field scorer (default): beam endpoints are precomputed
//    once per scan in the sensor frame, each candidate pose transforms them
//    with two FMAs per coordinate, and a single LikelihoodField lookup
//    replaces the 3×3 occupancy probe. This is the fast path GMapping and
//    AMCL run on both hosts.
//  - the brute-force reference scorer (use_likelihood_field = false): the
//    original per-beam trig + neighborhood probe, kept as the semantic
//    ground truth the equivalence tests check the cached path against.
//
// score() reports the number of beam evaluations it performed so callers can
// charge the platform cycle model per evaluation —
// calib::kScanMatchCachedCyclesPerBeamEval for the likelihood-field path,
// calib::kScanMatchCyclesPerBeamEval for the reference path.
#pragma once

#include <vector>

#include "common/geometry.h"
#include "common/simd.h"
#include "common/soa.h"
#include "msg/messages.h"
#include "perception/likelihood_field.h"
#include "perception/occupancy_grid.h"

namespace lgv::perception {

struct ScanMatcherConfig {
  int beam_stride = 4;          ///< evaluate every k-th beam
  double search_step_xy = 0.05; ///< initial translation step (m)
  double search_step_theta = 0.025;  ///< initial rotation step (rad)
  int refinement_iterations = 3;     ///< halvings of the step size
  double sigma = 0.12;          ///< endpoint score kernel width (m)
  /// Score against a LikelihoodField (fast path). When false, callers fall
  /// back to the brute-force reference scorer.
  bool use_likelihood_field = true;
};

struct MatchResult {
  Pose2D pose;
  double score = 0.0;
  size_t beam_evaluations = 0;  ///< work units performed
  bool used_likelihood_field = false;  ///< which cycle constant the evals cost
};

/// Pose-independent per-scan precomputation: the (r·cosθᵢ, r·sinθᵢ) beam
/// endpoints and the free-space check points one map cell short of them, in
/// the sensor frame. Computed once per scan and shared by every candidate
/// pose the hill climb evaluates (~6 candidates × iterations previously
/// recomputed the trig per beam each).
///
/// Structure-of-arrays: the score loop streams each coordinate contiguously
/// (and the SIMD path loads them as whole vector lanes), which an
/// array-of-Beam layout would interleave. Arrays are 32-byte aligned and all
/// the same length; in-range beams only, already strided.
struct PrecomputedScan {
  aligned_vector<double> end_x;     ///< beam endpoint, sensor frame
  aligned_vector<double> end_y;
  aligned_vector<double> before_x;  ///< endpoint pulled back one map resolution
  aligned_vector<double> before_y;

  size_t size() const { return end_x.size(); }
  bool empty() const { return end_x.empty(); }
};

/// Build the precomputation for `scan`, keeping every stride-th in-range beam
/// (the same beams the scorers evaluate). `resolution` is the map cell size
/// used for the free-space-before-endpoint check points.
PrecomputedScan precompute_scan(const msg::LaserScan& scan, int stride,
                                double resolution);

class ScanMatcher {
 public:
  explicit ScanMatcher(ScanMatcherConfig config = {}) : config_(config) {}

  const ScanMatcherConfig& config() const { return config_; }

  /// Brute-force reference score of `pose` against `map`; higher is better.
  /// Increments *evaluations by the number of beams scored.
  double score(const OccupancyGrid& map, const Pose2D& pose, const msg::LaserScan& scan,
               size_t* evaluations) const;

  /// Likelihood-field score: identical semantics to the reference scorer —
  /// same occupied sets and branch decisions, values equal up to the
  /// floating-point rounding of precomposed endpoints and squared distances.
  double score(const LikelihoodField& field, const Pose2D& pose,
               const PrecomputedScan& pre, size_t* evaluations) const;

  /// Greedy local refinement around `initial` (Fig. 6's per-particle
  /// scanMatch), brute-force reference path. Deterministic; thread-safe
  /// (const).
  MatchResult match(const OccupancyGrid& map, const Pose2D& initial,
                    const msg::LaserScan& scan) const;

  /// Same refinement on the likelihood-field fast path. `field` must be
  /// synced with the map the caller is matching against.
  MatchResult match(const LikelihoodField& field, const Pose2D& initial,
                    const msg::LaserScan& scan) const;

  /// Fast-path refinement with a caller-provided precomputation, so a batch
  /// caller (GMapping matches P particles against the same scan) precomputes
  /// once instead of per particle.
  MatchResult match(const LikelihoodField& field, const Pose2D& initial,
                    const PrecomputedScan& pre) const;

 private:
  template <typename ScoreFn>
  MatchResult hill_climb(const Pose2D& initial, ScoreFn&& score_fn) const;

  /// Arena-staged SIMD pipeline behind score(field, …); level is a vector
  /// level. See docs/kernels.md.
  double score_simd(simd::Level level, const LikelihoodField& field,
                    const Pose2D& pose, const PrecomputedScan& pre) const;

  ScanMatcherConfig config_;
};

}  // namespace lgv::perception
