// Hill-climbing scan matcher — the scanMatch kernel that dominates SLAM time
// (98% per §V). Scores a candidate pose by projecting (subsampled) beam
// endpoints into a map and rewarding endpoints that land on occupied cells
// with free space in front of them; refines the pose by greedy coordinate
// ascent over (x, y, θ) perturbations.
//
// score() reports the number of beam evaluations it performed so callers can
// charge platform::calib::kScanMatchCyclesPerBeamEval per evaluation.
#pragma once

#include "common/geometry.h"
#include "msg/messages.h"
#include "perception/occupancy_grid.h"

namespace lgv::perception {

struct ScanMatcherConfig {
  int beam_stride = 4;          ///< evaluate every k-th beam
  double search_step_xy = 0.05; ///< initial translation step (m)
  double search_step_theta = 0.025;  ///< initial rotation step (rad)
  int refinement_iterations = 3;     ///< halvings of the step size
  double sigma = 0.12;          ///< endpoint score kernel width (m)
};

struct MatchResult {
  Pose2D pose;
  double score = 0.0;
  size_t beam_evaluations = 0;  ///< work units performed
};

class ScanMatcher {
 public:
  explicit ScanMatcher(ScanMatcherConfig config = {}) : config_(config) {}

  const ScanMatcherConfig& config() const { return config_; }

  /// Likelihood-style score of `pose` against `map`; higher is better.
  /// Increments *evaluations by the number of beams scored.
  double score(const OccupancyGrid& map, const Pose2D& pose, const msg::LaserScan& scan,
               size_t* evaluations) const;

  /// Greedy local refinement around `initial` (Fig. 6's per-particle
  /// scanMatch). Deterministic; thread-safe (const).
  MatchResult match(const OccupancyGrid& map, const Pose2D& initial,
                    const msg::LaserScan& scan) const;

 private:
  ScanMatcherConfig config_;
};

}  // namespace lgv::perception
