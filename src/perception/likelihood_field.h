// Likelihood field: a map-derived cache that turns the scan-match inner loop
// from "probe a 3×3 occupancy neighborhood with an exp() per cell" into one
// packed-entry lookup (§V's scanMatch bottleneck; AMCL's likelihood-field
// measurement model uses the same cache).
//
// Each entry packs, for one map cell c:
//   bits 0..8  — which cells of c's 3×3 neighborhood are occupied
//                (bit k ↔ offset (k%3−1, k/3−1); bit 4 is c itself)
//   bit 9      — c is unknown (never observed, or out of the map)
// From the mask a scorer recovers exactly what the brute-force scorer
// computes: the minimum squared distance from a beam endpoint to an occupied
// neighbor cell center (min_obstacle_d2), whether any occupied neighbor
// exists at all, and the occupied/unknown flags for the free-space-before-
// endpoint and exploration-bonus checks. Because exp(−d²/2σ²) is monotone in
// d², "max of exp over neighbors" equals "exp of min d²" — the cached score
// agrees with the brute-force one to floating-point rounding (the occupied
// sets and branch decisions are identical by construction; only the d²
// arithmetic rounds differently), and the field itself is σ-independent
// (GMapping's matcher and AMCL share one).
//
// The field carries a 1-cell pad ring so endpoints that land one cell outside
// the map still see their in-bounds occupied neighbors, matching the
// brute-force scorer's bounds behavior; anything further out reads as
// unknown, which is also what the map reports.
//
// Invalidation: OccupancyGrid logs every cell whose occupied/unknown
// classification flips (see its change-tracking API). sync() consumes that
// log and rebuilds only the flipped cells' 3×3 neighborhoods; it falls back
// to a full rebuild when the log overflowed or the field was built against a
// different map (different map_id). The field is derived state: it is copied
// alongside its particle's map during RBPF resampling (staying consistent by
// construction) and is never serialized — after Algorithm 2 state migration
// it rebuilds on first use.
#pragma once

#include <cstdint>
#include <limits>

#include "common/geometry.h"
#include "common/grid.h"
#include "perception/occupancy_grid.h"

namespace lgv::perception {

class LikelihoodField {
 public:
  static constexpr uint16_t kNeighborMask = 0x1FF;     ///< bits 0..8
  static constexpr uint16_t kSelfOccupiedBit = 1u << 4;
  static constexpr uint16_t kUnknownBit = 1u << 9;

  LikelihoodField() = default;

  /// Bring the field up to date with `map`: no-op when already current,
  /// incremental when the map's changelog covers the gap, full rebuild
  /// otherwise. Returns the number of field cells recomputed (the work unit
  /// the platform cycle model charges field maintenance by).
  size_t sync(const OccupancyGrid& map);

  bool in_sync_with(const OccupancyGrid& map) const {
    return compatible_with(map) && synced_version_ == map.change_version();
  }
  bool empty() const { return cells_.size() == 0; }

  const GridFrame& frame() const { return frame_; }
  int width() const { return width_; }
  int height() const { return height_; }

  /// Packed entry for cell `c` (see header comment); cells beyond the pad
  /// ring read as unknown with no occupied neighbors.
  uint16_t entry(CellIndex c) const {
    return cells_.value_or({c.x + 1, c.y + 1}, kUnknownBit);
  }
  bool occupied(CellIndex c) const { return (entry(c) & kSelfOccupiedBit) != 0; }

  /// Force a private copy of the (CoW-shared) entry block now — deep-copy
  /// reference mode for the resample benchmarks.
  void unshare() { cells_.unshare(); }

  bool unknown(CellIndex c) const { return (entry(c) & kUnknownBit) != 0; }
  bool has_obstacle_near(CellIndex c) const { return (entry(c) & kNeighborMask) != 0; }

  /// Minimum squared distance from `p` to the center of an occupied cell in
  /// `c`'s 3×3 neighborhood; +infinity when none is occupied. Computed as
  /// dx²+dy² directly (the brute-force scorers square a hypot), so cached
  /// scores agree with the reference up to floating-point rounding.
  double min_obstacle_d2(CellIndex c, const Point2D& p) const {
    uint16_t mask = entry(c) & kNeighborMask;
    double best = std::numeric_limits<double>::infinity();
    while (mask != 0) {
      const int k = count_trailing_zeros(mask);
      mask = static_cast<uint16_t>(mask & (mask - 1));
      const Point2D cw = frame_.cell_to_world({c.x + k % 3 - 1, c.y + k / 3 - 1});
      const double dx = cw.x - p.x, dy = cw.y - p.y;
      best = std::min(best, dx * dx + dy * dy);
    }
    return best;
  }

 private:
  static int count_trailing_zeros(uint16_t v);
  bool compatible_with(const OccupancyGrid& map) const {
    return !empty() && map_id_ == map.map_id() && width_ == map.width() &&
           height_ == map.height() && frame_ == map.frame();
  }
  /// Recompute the packed entry of `c` (map coordinates; pad ring included).
  void rebuild_cell(const OccupancyGrid& map, CellIndex c);

  GridFrame frame_;
  int width_ = 0;   ///< map width; the grid below is padded to width_+2
  int height_ = 0;
  // (width_+2)×(height_+2), index shifted by +1. Copy-on-write: a resampled
  // particle's field shares the block with its source until one of them is
  // written (its map copy shares storage too, so they drift together).
  CowGrid<uint16_t> cells_;
  uint64_t map_id_ = 0;
  uint64_t synced_version_ = 0;
};

}  // namespace lgv::perception
