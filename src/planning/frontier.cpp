#include "planning/frontier.h"

#include <algorithm>
#include <queue>

#include "common/grid.h"
#include "platform/calibration.h"

namespace lgv::planning {

FrontierResult FrontierExplorer::detect(const msg::OccupancyGridMsg& map,
                                        const Pose2D& robot,
                                        platform::ExecutionContext& ctx) const {
  FrontierResult out;
  const int w = map.width, h = map.height;
  auto at = [&](int x, int y) -> int8_t {
    return map.data[static_cast<size_t>(y) * w + x];
  };
  auto is_free = [&](int x, int y) { return at(x, y) >= 0 && at(x, y) < 35; };
  auto is_unknown = [&](int x, int y) { return at(x, y) < 0; };

  // A frontier cell is free with at least one unknown 4-neighbor.
  Grid<uint8_t> frontier_mask(w, h, 0);
  for (int y = 1; y + 1 < h; ++y) {
    for (int x = 1; x + 1 < w; ++x) {
      ++out.cells_scanned;
      if (!is_free(x, y)) continue;
      if (is_unknown(x + 1, y) || is_unknown(x - 1, y) || is_unknown(x, y + 1) ||
          is_unknown(x, y - 1)) {
        frontier_mask.at(x, y) = 1;
      }
    }
  }
  ctx.serial_work(static_cast<double>(out.cells_scanned) *
                  platform::calib::kFrontierCyclesPerCell);

  // Connected-component clustering (8-connectivity BFS).
  Grid<uint8_t> visited(w, h, 0);
  for (int y = 1; y + 1 < h; ++y) {
    for (int x = 1; x + 1 < w; ++x) {
      if (frontier_mask.at(x, y) == 0 || visited.at(x, y) != 0) continue;
      std::queue<CellIndex> bfs;
      bfs.push({x, y});
      visited.at(x, y) = 1;
      double sx = 0.0, sy = 0.0;
      size_t count = 0;
      while (!bfs.empty()) {
        const CellIndex c = bfs.front();
        bfs.pop();
        const Point2D wp = map.frame.cell_to_world(c);
        sx += wp.x;
        sy += wp.y;
        ++count;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            const CellIndex n{c.x + dx, c.y + dy};
            if (n.x < 1 || n.x + 1 >= w || n.y < 1 || n.y + 1 >= h) continue;
            if (frontier_mask.at(n) == 0 || visited.at(n) != 0) continue;
            visited.at(n) = 1;
            bfs.push(n);
          }
        }
      }
      if (count < static_cast<size_t>(config_.min_cluster_cells)) continue;
      Frontier f;
      f.centroid = {sx / static_cast<double>(count), sy / static_cast<double>(count)};
      f.cells = count;
      f.distance_m = distance(f.centroid, robot.position());
      if (f.distance_m < config_.min_distance_m) continue;
      out.frontiers.push_back(f);
    }
  }

  std::sort(out.frontiers.begin(), out.frontiers.end(),
            [this](const Frontier& a, const Frontier& b) {
              const double sa = config_.size_weight * static_cast<double>(a.cells) -
                                config_.distance_weight * a.distance_m;
              const double sb = config_.size_weight * static_cast<double>(b.cells) -
                                config_.distance_weight * b.distance_m;
              return sa > sb;
            });
  if (!out.frontiers.empty()) out.next_goal = out.frontiers.front().centroid;
  return out;
}

}  // namespace lgv::planning
