// Grid path search over a costmap: one core supporting both A* [45] (with an
// admissible octile heuristic) and Dijkstra [46] (heuristic = 0), the two
// algorithms the paper pairs with the ROS global planner. Cell traversal cost
// blends distance with costmap values so paths keep clearance.
#pragma once

#include <optional>
#include <vector>

#include "common/geometry.h"
#include "perception/costmap2d.h"

namespace lgv::planning {

enum class SearchAlgorithm { kAStar, kDijkstra };

struct SearchResult {
  std::vector<CellIndex> cells;  ///< start → goal inclusive
  double cost = 0.0;             ///< accumulated g-value of the goal
  size_t expansions = 0;         ///< work units (nodes popped)
  bool success = false;
};

struct SearchConfig {
  SearchAlgorithm algorithm = SearchAlgorithm::kAStar;
  /// Weight of costmap cell cost relative to distance (ROS
  /// global_planner's cost_factor analog): extra cost per step through a
  /// cell of value 253 is cost_factor × 253 neutral units.
  double cost_factor = 3.0 / 254.0;
  /// Fixed per-cell charge (keeps paths short).
  double neutral_cost = 1.0;
};

/// Plan on the costmap from `start` to `goal` (cell coordinates).
SearchResult plan_on_costmap(const perception::Costmap2D& costmap, CellIndex start,
                             CellIndex goal, const SearchConfig& config = {});

}  // namespace lgv::planning
