// The Path Planning node (PP): answers "shortest collision-free path from
// here to the goal" as a service, as in Fig. 2's client/server arrows.
#pragma once

#include "msg/messages.h"
#include "planning/grid_search.h"
#include "platform/execution_context.h"

namespace lgv::planning {

struct GlobalPlannerConfig {
  SearchConfig search;
  /// Keep every k-th cell as a waypoint (plus the goal).
  int waypoint_stride = 4;
};

struct PlanRequest {
  Pose2D start;
  Pose2D goal;
};

struct PlanResult {
  msg::PathMsg path;
  bool success = false;
  double cost = 0.0;
  size_t expansions = 0;
};

class GlobalPlanner {
 public:
  explicit GlobalPlanner(GlobalPlannerConfig config = {}) : config_(config) {}

  const GlobalPlannerConfig& config() const { return config_; }
  void set_algorithm(SearchAlgorithm a) { config_.search.algorithm = a; }

  /// Plan on the given costmap; charges search work to `ctx`.
  PlanResult plan(const perception::Costmap2D& costmap, const PlanRequest& request,
                  platform::ExecutionContext& ctx) const;

 private:
  GlobalPlannerConfig config_;
};

}  // namespace lgv::planning
