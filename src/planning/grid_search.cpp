#include "planning/grid_search.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace lgv::planning {

namespace {

struct OpenEntry {
  double f;
  double g;
  int index;
  bool operator>(const OpenEntry& o) const { return f > o.f; }
};

double octile(CellIndex a, CellIndex b) {
  const double dx = std::abs(a.x - b.x);
  const double dy = std::abs(a.y - b.y);
  return (dx + dy) + (std::numbers::sqrt2 - 2.0) * std::min(dx, dy);
}

}  // namespace

SearchResult plan_on_costmap(const perception::Costmap2D& costmap, CellIndex start,
                             CellIndex goal, const SearchConfig& config) {
  SearchResult result;
  const int w = costmap.width(), h = costmap.height();
  auto idx = [w](CellIndex c) { return c.y * w + c.x; };
  auto cell_of = [w](int i) { return CellIndex{i % w, i / w}; };

  if (!costmap.is_traversable(start) || !costmap.is_traversable(goal)) return result;

  const size_t n = static_cast<size_t>(w) * h;
  std::vector<double> g(n, std::numeric_limits<double>::infinity());
  std::vector<int> parent(n, -1);
  std::vector<uint8_t> closed(n, 0);
  std::priority_queue<OpenEntry, std::vector<OpenEntry>, std::greater<>> open;

  const bool astar = config.algorithm == SearchAlgorithm::kAStar;
  g[idx(start)] = 0.0;
  open.push({astar ? octile(start, goal) : 0.0, 0.0, idx(start)});

  constexpr int dx[] = {1, -1, 0, 0, 1, 1, -1, -1};
  constexpr int dy[] = {0, 0, 1, -1, 1, -1, 1, -1};
  constexpr double step_len[] = {1, 1, 1, 1, std::numbers::sqrt2, std::numbers::sqrt2,
                                 std::numbers::sqrt2, std::numbers::sqrt2};

  while (!open.empty()) {
    const OpenEntry top = open.top();
    open.pop();
    if (closed[static_cast<size_t>(top.index)]) continue;
    closed[static_cast<size_t>(top.index)] = 1;
    ++result.expansions;
    const CellIndex cur = cell_of(top.index);
    if (cur == goal) {
      result.success = true;
      result.cost = top.g;
      break;
    }
    for (int k = 0; k < 8; ++k) {
      const CellIndex nb{cur.x + dx[k], cur.y + dy[k]};
      if (nb.x < 0 || nb.x >= w || nb.y < 0 || nb.y >= h) continue;
      if (!costmap.is_traversable(nb)) continue;
      const size_t ni = static_cast<size_t>(idx(nb));
      if (closed[ni]) continue;
      const double cell_cost = static_cast<double>(costmap.cost_at(nb));
      const double step =
          step_len[k] * (config.neutral_cost + config.cost_factor * cell_cost);
      const double ng = top.g + step;
      if (ng < g[ni]) {
        g[ni] = ng;
        parent[ni] = top.index;
        const double f = astar ? ng + octile(nb, goal) * config.neutral_cost : ng;
        open.push({f, ng, static_cast<int>(ni)});
      }
    }
  }

  if (!result.success) return result;

  // Walk parents back from the goal.
  std::vector<CellIndex> rev;
  int cur = idx(goal);
  while (cur != -1) {
    rev.push_back(cell_of(cur));
    cur = parent[static_cast<size_t>(cur)];
  }
  result.cells.assign(rev.rbegin(), rev.rend());
  return result;
}

}  // namespace lgv::planning
