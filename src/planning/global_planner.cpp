#include "planning/global_planner.h"

#include <cmath>

#include "platform/calibration.h"

namespace lgv::planning {

PlanResult GlobalPlanner::plan(const perception::Costmap2D& costmap,
                               const PlanRequest& request,
                               platform::ExecutionContext& ctx) const {
  PlanResult out;
  const CellIndex start = costmap.frame().world_to_cell(request.start.position());
  CellIndex goal = costmap.frame().world_to_cell(request.goal.position());

  // If the goal cell itself is untraversable (e.g. goal set slightly inside
  // inflation), search a small neighborhood for the nearest traversable cell.
  if (!costmap.is_traversable(goal)) {
    double best_d = std::numeric_limits<double>::infinity();
    CellIndex best = goal;
    for (int dy = -8; dy <= 8; ++dy) {
      for (int dx = -8; dx <= 8; ++dx) {
        const CellIndex c{goal.x + dx, goal.y + dy};
        if (!costmap.is_traversable(c)) continue;
        const double d = std::hypot(dx, dy);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
    }
    goal = best;
  }

  const SearchResult r = plan_on_costmap(costmap, start, goal, config_.search);
  ctx.serial_work(static_cast<double>(r.expansions) *
                  platform::calib::kSearchCyclesPerExpansion);
  out.expansions = r.expansions;
  if (!r.success) return out;

  out.success = true;
  out.cost = r.cost;
  out.path.header.frame_id = "map";
  const int stride = std::max(1, config_.waypoint_stride);
  for (size_t i = 0; i < r.cells.size(); i += static_cast<size_t>(stride)) {
    const Point2D p = costmap.frame().cell_to_world(r.cells[i]);
    out.path.poses.emplace_back(p.x, p.y, 0.0);
  }
  const Point2D last = costmap.frame().cell_to_world(r.cells.back());
  if (out.path.poses.empty() || distance(out.path.poses.back().position(), last) > 1e-6) {
    out.path.poses.emplace_back(last.x, last.y, 0.0);
  }
  // Headings along the path.
  for (size_t i = 0; i + 1 < out.path.poses.size(); ++i) {
    const Point2D d = out.path.poses[i + 1].position() - out.path.poses[i].position();
    out.path.poses[i].theta = std::atan2(d.y, d.x);
  }
  if (out.path.poses.size() >= 2) {
    out.path.poses.back().theta = out.path.poses[out.path.poses.size() - 2].theta;
  }
  return out;
}

}  // namespace lgv::planning
