// Frontier-based exploration [47]: find the boundary cells between known-free
// and unknown space in the SLAM map, cluster them, and send the best frontier
// centroid to Path Planning as the next goal (Fig. 2's ⑧⑨ flow).
#pragma once

#include <optional>
#include <vector>

#include "common/geometry.h"
#include "msg/messages.h"
#include "platform/execution_context.h"

namespace lgv::planning {

struct FrontierConfig {
  int min_cluster_cells = 6;    ///< discard specks
  double min_distance_m = 0.4;  ///< ignore frontiers under the robot
  /// Score = size_weight·cells − distance_weight·distance (greedy nearest-ish).
  double size_weight = 0.4;
  double distance_weight = 1.0;
};

struct Frontier {
  Point2D centroid;
  size_t cells = 0;
  double distance_m = 0.0;  ///< straight-line from the robot
};

struct FrontierResult {
  std::vector<Frontier> frontiers;  ///< sorted best-first
  size_t cells_scanned = 0;
  /// Empty when exploration is complete (no reachable frontier).
  std::optional<Point2D> next_goal;
};

class FrontierExplorer {
 public:
  explicit FrontierExplorer(FrontierConfig config = {}) : config_(config) {}

  FrontierResult detect(const msg::OccupancyGridMsg& map, const Pose2D& robot,
                        platform::ExecutionContext& ctx) const;

 private:
  FrontierConfig config_;
};

}  // namespace lgv::planning
