// ROS-like computation graph: named nodes publish and subscribe typed topics
// in the subscriber/publisher mode of Fig. 2, plus a client/server facility
// for the Path Planning service (dashed arrows).
//
// Every node is registered on a Host (LGV / edge / cloud — Fig. 8). Delivery
// between same-host endpoints is immediate and loss-free (intra-process ROS
// transport). Delivery across hosts is delegated to a RemoteTransport — the
// Switcher (src/core) installs one backed by the emulated wireless link, so
// offloaded topics experience real latency, loss and kernel-buffer drops.
// Migration is a single set_host() call: routing updates automatically.
//
// Subscriptions default to a ONE-LENGTH queue that drops the oldest message:
// the freshness-over-reliability policy the paper's VDP streams use (§VI).
#pragma once

#include <cassert>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <typeindex>
#include <vector>

#include "common/serialization.h"
#include "common/telemetry/telemetry.h"
#include "platform/platform_spec.h"

namespace lgv::mw {

using NodeName = std::string;
using TopicName = std::string;
using platform::Host;

struct TopicStats {
  uint64_t published = 0;
  uint64_t delivered_local = 0;
  uint64_t sent_remote = 0;
  uint64_t dropped_queue = 0;   ///< overwritten in a full bounded queue
  uint64_t decode_failures = 0; ///< remote bytes the deserializer rejected
  /// Publishes that had to copy the message body into the shared payload
  /// (Publisher::publish(const T&)). Move- and shared_ptr-publishes avoid the
  /// copy and count under zero_copy instead.
  uint64_t payload_copies = 0;
  uint64_t zero_copy = 0;
};

/// Per-subscription view of a topic: the aggregated TopicStats can hide one
/// starved subscriber behind a healthy one; this can't.
struct SubscriptionStats {
  NodeName subscriber;
  uint64_t received = 0;  ///< callbacks invoked
  uint64_t dropped = 0;   ///< overwritten in this subscriber's full queue
  size_t queue_depth = 0;
  size_t max_queue = 0;
};

/// Installed by the Switcher to carry serialized messages across hosts.
class RemoteTransport {
 public:
  virtual ~RemoteTransport() = default;
  /// Ship `bytes` for `topic` toward the subscriber node `dst` on `dst_host`.
  /// The transport reads virtual time from its own clock and later calls
  /// Graph::deliver_serialized() on arrival.
  virtual void send(const TopicName& topic, const NodeName& dst, Host src_host,
                    Host dst_host, std::vector<uint8_t> bytes) = 0;
};

class Graph;

namespace detail {

using ErasedMessage = std::shared_ptr<const void>;

/// A queued delivery: the shared payload plus the publisher's trace context,
/// restored around the callback at drain time so work caused by the message
/// parents under the span that published it — across hosts, the Switcher
/// re-creates the context from the frame header before enqueueing.
struct QueuedMessage {
  ErasedMessage msg;
  telemetry::TraceContext ctx;
};

struct SubscriptionRec {
  NodeName subscriber;
  size_t max_queue = 1;
  std::deque<QueuedMessage> queue;
  std::function<void(const ErasedMessage&)> callback;
  uint64_t dropped = 0;
  uint64_t received = 0;
};

/// Cached per-topic metric handles (wired lazily on first use so topics may
/// be created before or after Graph::set_telemetry).
struct TopicTelemetry {
  bool wired = false;
  telemetry::Counter* published = nullptr;
  telemetry::Counter* delivered = nullptr;
  telemetry::Counter* dropped = nullptr;
  telemetry::Counter* sent_remote = nullptr;
  telemetry::Counter* payload_copies = nullptr;
  telemetry::Counter* zero_copy = nullptr;
  telemetry::Gauge* queue_depth = nullptr;
  telemetry::Histogram* message_bytes = nullptr;
};

struct TopicRec {
  TopicName name;
  std::type_index type{typeid(void)};
  std::function<std::vector<uint8_t>(const void*)> serialize;
  std::function<ErasedMessage(const std::vector<uint8_t>&)> deserialize;
  std::vector<std::unique_ptr<SubscriptionRec>> subs;
  std::optional<ErasedMessage> latched;
  bool latch = false;
  TopicStats stats;
  TopicTelemetry telemetry;
  /// Serialization is lazy: a local-only publish hands every subscriber the
  /// same immutable payload and produces no bytes at all. The last message is
  /// kept so Graph::last_message_bytes can serialize on demand; the cached
  /// size is invalidated by each publish (mutable: the accessor is const).
  mutable ErasedMessage last_msg;
  mutable size_t last_bytes = 0;
  mutable bool last_bytes_valid = false;
};

}  // namespace detail

/// Typed publisher handle. Three publish forms trade copy cost for caller
/// convenience: the const-ref form copies the body into the shared payload
/// (counted in TopicStats::payload_copies); the rvalue form moves it; the
/// shared form aliases a payload the caller already owns. Either way every
/// local subscriber sees the SAME immutable object — callbacks receive
/// `const T&` and must not cast the const away.
template <typename T>
class Publisher {
 public:
  Publisher() = default;
  void publish(const T& message);
  void publish(T&& message);
  /// Zero-copy hand-off of a payload the caller built (or received) in a
  /// shared_ptr. The Graph holds references only; the message is never
  /// duplicated on the local path.
  void publish_shared(std::shared_ptr<const T> message);
  bool valid() const { return graph_ != nullptr; }
  const TopicName& topic() const { return topic_; }

 private:
  friend class Graph;
  Publisher(Graph* graph, NodeName node, TopicName topic)
      : graph_(graph), node_(std::move(node)), topic_(std::move(topic)) {}
  Graph* graph_ = nullptr;
  NodeName node_;
  TopicName topic_;
};

/// The broker. Single-threaded by design: the mission loop calls spin() at
/// each virtual tick; callbacks run inline.
class Graph {
 public:
  // ---- node registry ----
  void register_node(const NodeName& node, Host host);
  bool has_node(const NodeName& node) const { return hosts_.count(node) > 0; }
  Host host_of(const NodeName& node) const;
  /// Migrate a node; future deliveries re-route automatically (§IV, §VI).
  void set_host(const NodeName& node, Host host);
  std::vector<NodeName> nodes() const;

  // ---- pub/sub ----
  template <typename T>
  Publisher<T> advertise(const NodeName& node, const TopicName& topic, bool latch = false);

  template <typename T>
  void subscribe(const NodeName& node, const TopicName& topic,
                 std::function<void(const T&)> callback, size_t queue_size = 1);

  /// Deliver everything queued; returns number of callbacks invoked.
  size_t spin();

  // ---- observability ----
  /// Wire per-topic metrics (`mw_*` families, labeled {topic=...}) and
  /// publish/deliver trace events into `telemetry` (nullptr or a disabled
  /// bundle disconnects). Trace timestamps come from the tracer's registered
  /// virtual clock.
  void set_telemetry(telemetry::Telemetry* telemetry);

  // ---- remote path ----
  void set_remote_transport(RemoteTransport* transport) { transport_ = transport; }
  /// Called by the transport when a cross-host message arrives.
  void deliver_serialized(const TopicName& topic, const NodeName& dst,
                          const std::vector<uint8_t>& bytes);

  // ---- services (client/server paradigm) ----
  template <typename Req, typename Res>
  void advertise_service(const NodeName& node, const std::string& service,
                         std::function<Res(const Req&)> handler);
  template <typename Req, typename Res>
  std::optional<Res> call_service(const std::string& service, const Req& request);
  /// Host of the node serving `service` (so callers can account for network
  /// time on cross-host calls).
  std::optional<Host> service_host(const std::string& service) const;

  // ---- introspection ----
  const TopicStats* topic_stats(const TopicName& topic) const;
  /// Per-subscriber received/dropped/queue-depth for `topic` (empty when the
  /// topic is unknown). Order matches subscription order.
  std::vector<SubscriptionStats> subscription_stats(const TopicName& topic) const;
  std::vector<TopicName> topics() const;
  /// Serialized size of the last message published on `topic` (bytes).
  size_t last_message_bytes(const TopicName& topic) const;

 private:
  template <typename T>
  detail::TopicRec& topic_rec(const TopicName& topic);
  void dispatch(detail::TopicRec& rec, const NodeName& publisher,
                const detail::ErasedMessage& msg);
  void enqueue(detail::TopicRec& rec, detail::SubscriptionRec& sub,
               const detail::ErasedMessage& msg);
  /// Lazily bind the topic's metric handles; returns the telemetry bundle or
  /// nullptr when disconnected.
  telemetry::Telemetry* topic_telemetry(detail::TopicRec& rec);

  template <typename T>
  friend class Publisher;
  /// Shared publish core. `copied` records whether the caller had to copy
  /// the message body to produce the shared payload (metrics only — the
  /// delivery path is identical).
  template <typename T>
  void publish_shared_impl(const NodeName& node, const TopicName& topic,
                           std::shared_ptr<const T> message, bool copied);

  std::map<NodeName, Host> hosts_;
  std::map<TopicName, detail::TopicRec> topics_;
  std::map<std::string, std::pair<NodeName, std::function<detail::ErasedMessage(const void*)>>>
      services_;
  RemoteTransport* transport_ = nullptr;
  telemetry::Telemetry* telemetry_ = nullptr;
};

// ---- template implementations ----

template <typename T>
void Publisher<T>::publish(const T& message) {
  assert(graph_ != nullptr);
  graph_->publish_shared_impl<T>(node_, topic_, std::make_shared<const T>(message),
                                 /*copied=*/true);
}

template <typename T>
void Publisher<T>::publish(T&& message) {
  assert(graph_ != nullptr);
  graph_->publish_shared_impl<T>(node_, topic_,
                                 std::make_shared<const T>(std::move(message)),
                                 /*copied=*/false);
}

template <typename T>
void Publisher<T>::publish_shared(std::shared_ptr<const T> message) {
  assert(graph_ != nullptr);
  assert(message != nullptr);
  graph_->publish_shared_impl<T>(node_, topic_, std::move(message),
                                 /*copied=*/false);
}

template <typename T>
detail::TopicRec& Graph::topic_rec(const TopicName& topic) {
  auto [it, inserted] = topics_.try_emplace(topic);
  detail::TopicRec& rec = it->second;
  if (inserted) {
    rec.name = topic;
    rec.type = std::type_index(typeid(T));
    rec.serialize = [](const void* p) {
      return serialize_to_bytes(*static_cast<const T*>(p));
    };
    rec.deserialize = [](const std::vector<uint8_t>& bytes) -> detail::ErasedMessage {
      return std::make_shared<const T>(deserialize_from_bytes<T>(bytes));
    };
  } else {
    assert(rec.type == std::type_index(typeid(T)) && "topic type mismatch");
  }
  return rec;
}

template <typename T>
Publisher<T> Graph::advertise(const NodeName& node, const TopicName& topic, bool latch) {
  assert(has_node(node));
  detail::TopicRec& rec = topic_rec<T>(topic);
  rec.latch = rec.latch || latch;
  return Publisher<T>(this, node, topic);
}

template <typename T>
void Graph::subscribe(const NodeName& node, const TopicName& topic,
                      std::function<void(const T&)> callback, size_t queue_size) {
  assert(has_node(node));
  detail::TopicRec& rec = topic_rec<T>(topic);
  auto sub = std::make_unique<detail::SubscriptionRec>();
  sub->subscriber = node;
  sub->max_queue = queue_size == 0 ? 1 : queue_size;
  sub->callback = [cb = std::move(callback)](const detail::ErasedMessage& msg) {
    cb(*static_cast<const T*>(msg.get()));
  };
  if (rec.latch && rec.latched.has_value()) {
    enqueue(rec, *sub, *rec.latched);
  }
  rec.subs.push_back(std::move(sub));
}

template <typename T>
void Graph::publish_shared_impl(const NodeName& node, const TopicName& topic,
                                std::shared_ptr<const T> message, bool copied) {
  detail::TopicRec& rec = topic_rec<T>(topic);
  detail::ErasedMessage msg = std::move(message);
  rec.last_msg = msg;
  rec.last_bytes_valid = false;
  if (rec.latch) rec.latched = msg;
  ++rec.stats.published;
  if (copied) {
    ++rec.stats.payload_copies;
  } else {
    ++rec.stats.zero_copy;
  }
  if (topic_telemetry(rec) != nullptr) {
    (copied ? rec.telemetry.payload_copies : rec.telemetry.zero_copy)->inc();
  }
  dispatch(rec, node, msg);
}

template <typename Req, typename Res>
void Graph::advertise_service(const NodeName& node, const std::string& service,
                              std::function<Res(const Req&)> handler) {
  assert(has_node(node));
  services_[service] = {node, [h = std::move(handler)](const void* req) {
                          return std::make_shared<const Res>(
                              h(*static_cast<const Req*>(req)));
                        }};
}

template <typename Req, typename Res>
std::optional<Res> Graph::call_service(const std::string& service, const Req& request) {
  const auto it = services_.find(service);
  if (it == services_.end()) return std::nullopt;
  detail::ErasedMessage res = it->second.second(&request);
  return *static_cast<const Res*>(res.get());
}

}  // namespace lgv::mw
