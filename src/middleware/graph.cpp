#include "middleware/graph.h"

#include <stdexcept>

namespace lgv::mw {

void Graph::register_node(const NodeName& node, Host host) { hosts_[node] = host; }

Host Graph::host_of(const NodeName& node) const {
  const auto it = hosts_.find(node);
  if (it == hosts_.end()) throw std::invalid_argument("unknown node: " + node);
  return it->second;
}

void Graph::set_host(const NodeName& node, Host host) {
  if (!has_node(node)) throw std::invalid_argument("unknown node: " + node);
  hosts_[node] = host;
}

std::vector<NodeName> Graph::nodes() const {
  std::vector<NodeName> out;
  out.reserve(hosts_.size());
  for (const auto& [name, host] : hosts_) out.push_back(name);
  return out;
}

void Graph::set_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry != nullptr && telemetry->enabled() ? telemetry : nullptr;
  for (auto& [name, rec] : topics_) rec.telemetry = detail::TopicTelemetry{};
}

telemetry::Telemetry* Graph::topic_telemetry(detail::TopicRec& rec) {
  if (telemetry_ == nullptr) return nullptr;
  if (!rec.telemetry.wired) {
    const telemetry::Labels labels = {{"topic", rec.name}};
    auto& m = telemetry_->metrics();
    rec.telemetry.published = &m.counter("mw_published_total", labels);
    rec.telemetry.delivered = &m.counter("mw_delivered_total", labels);
    rec.telemetry.dropped = &m.counter("mw_dropped_total", labels);
    rec.telemetry.sent_remote = &m.counter("mw_sent_remote_total", labels);
    rec.telemetry.payload_copies = &m.counter("mw_payload_copies_total", labels);
    rec.telemetry.zero_copy = &m.counter("mw_zero_copy_total", labels);
    rec.telemetry.queue_depth = &m.gauge("mw_queue_depth", labels);
    rec.telemetry.message_bytes = &m.histogram(
        "mw_message_bytes", labels,
        {64, 256, 1024, 4096, 16384, 65536, 262144, 1048576});
    rec.telemetry.wired = true;
  }
  return telemetry_;
}

void Graph::enqueue(detail::TopicRec& rec, detail::SubscriptionRec& sub,
                    const detail::ErasedMessage& msg) {
  if (sub.queue.size() >= sub.max_queue) {
    // Bounded queue, freshest wins: drop the oldest (ROS queue_size semantics).
    sub.queue.pop_front();
    ++sub.dropped;
    ++rec.stats.dropped_queue;
    if (telemetry::Telemetry* t = topic_telemetry(rec)) {
      rec.telemetry.dropped->inc();
      t->tracer().instant_now("mw.drop", "middleware", rec.name,
                              {{"subscriber", sub.subscriber}});
    }
  }
  telemetry::TraceContext ctx;
  if (telemetry_ != nullptr) ctx = telemetry_->tracer().current();
  sub.queue.push_back(detail::QueuedMessage{msg, ctx});
  if (topic_telemetry(rec) != nullptr) {
    rec.telemetry.queue_depth->set(static_cast<double>(sub.queue.size()));
  }
}

void Graph::dispatch(detail::TopicRec& rec, const NodeName& publisher,
                     const detail::ErasedMessage& msg) {
  const Host src = host_of(publisher);
  // Lazy serialization: bytes exist only once something needs them — a
  // remote hop, or the size histogram when telemetry is wired. A local-only
  // publish on a quiet topic costs no encoding at all; subscribers share the
  // publisher's immutable payload.
  std::vector<uint8_t> bytes;
  bool have_bytes = false;
  const auto ensure_bytes = [&]() -> const std::vector<uint8_t>& {
    if (!have_bytes) {
      bytes = rec.serialize(msg.get());
      have_bytes = true;
      rec.last_bytes = bytes.size();
      rec.last_bytes_valid = true;
    }
    return bytes;
  };
  if (telemetry::Telemetry* t = topic_telemetry(rec)) {
    rec.telemetry.published->inc();
    rec.telemetry.message_bytes->observe(static_cast<double>(ensure_bytes().size()));
    t->tracer().instant_now("mw.publish", platform::host_name(src), rec.name,
                            {{"publisher", publisher},
                             {"bytes", std::to_string(bytes.size())}});
  }
  for (auto& sub : rec.subs) {
    const Host dst = host_of(sub->subscriber);
    if (dst == src || transport_ == nullptr) {
      enqueue(rec, *sub, msg);
      ++rec.stats.delivered_local;
    } else {
      ++rec.stats.sent_remote;
      if (topic_telemetry(rec) != nullptr) rec.telemetry.sent_remote->inc();
      transport_->send(rec.name, sub->subscriber, src, dst, ensure_bytes());
    }
  }
}

void Graph::deliver_serialized(const TopicName& topic, const NodeName& dst,
                               const std::vector<uint8_t>& bytes) {
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return;
  detail::TopicRec& rec = it->second;
  // No remote byte stream is trusted to decode: the Switcher's CRC keeps the
  // channel honest, but version skew or a schema bug on the far host still
  // produces well-checksummed garbage. That is a counted drop, never a crash
  // of the mission loop.
  detail::ErasedMessage msg;
  try {
    msg = rec.deserialize(bytes);
  } catch (const std::exception&) {
    ++rec.stats.decode_failures;
    if (topic_telemetry(rec) != nullptr) {
      telemetry_->metrics()
          .counter("mw_decode_failures_total", {{"topic", rec.name}})
          .inc();
    }
    return;
  }
  for (auto& sub : rec.subs) {
    if (sub->subscriber == dst) {
      enqueue(rec, *sub, msg);
      return;
    }
  }
}

size_t Graph::spin() {
  size_t invoked = 0;
  // Two-phase drain so that callbacks publishing new messages don't recurse
  // into queues we're iterating.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto& [name, rec] : topics_) {
      for (auto& sub : rec.subs) {
        while (!sub->queue.empty()) {
          detail::QueuedMessage qm = std::move(sub->queue.front());
          sub->queue.pop_front();
          ++sub->received;
          {
            // The callback runs under the publisher's context so everything
            // it records (node spans, republications) stitches causally.
            telemetry::ScopedTraceContext scope(
                telemetry_ != nullptr ? &telemetry_->tracer() : nullptr, qm.ctx);
            if (telemetry::Telemetry* t = topic_telemetry(rec)) {
              rec.telemetry.delivered->inc();
              t->tracer().instant_now("mw.deliver",
                                      platform::host_name(host_of(sub->subscriber)),
                                      rec.name, {{"subscriber", sub->subscriber}});
            }
            sub->callback(qm.msg);
          }
          ++invoked;
          progressed = true;
        }
      }
    }
  }
  return invoked;
}

std::optional<Host> Graph::service_host(const std::string& service) const {
  const auto it = services_.find(service);
  if (it == services_.end()) return std::nullopt;
  return host_of(it->second.first);
}

const TopicStats* Graph::topic_stats(const TopicName& topic) const {
  const auto it = topics_.find(topic);
  return it == topics_.end() ? nullptr : &it->second.stats;
}

std::vector<SubscriptionStats> Graph::subscription_stats(const TopicName& topic) const {
  std::vector<SubscriptionStats> out;
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return out;
  out.reserve(it->second.subs.size());
  for (const auto& sub : it->second.subs) {
    SubscriptionStats s;
    s.subscriber = sub->subscriber;
    s.received = sub->received;
    s.dropped = sub->dropped;
    s.queue_depth = sub->queue.size();
    s.max_queue = sub->max_queue;
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<TopicName> Graph::topics() const {
  std::vector<TopicName> out;
  out.reserve(topics_.size());
  for (const auto& [name, rec] : topics_) out.push_back(name);
  return out;
}

size_t Graph::last_message_bytes(const TopicName& topic) const {
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return 0;
  const detail::TopicRec& rec = it->second;
  if (!rec.last_bytes_valid) {
    if (rec.last_msg == nullptr) return 0;
    // Serialize on demand: the publish path skipped encoding because nothing
    // needed the bytes at the time.
    rec.last_bytes = rec.serialize(rec.last_msg.get()).size();
    rec.last_bytes_valid = true;
  }
  return rec.last_bytes;
}

}  // namespace lgv::mw
