#include "middleware/graph.h"

#include <stdexcept>

namespace lgv::mw {

void Graph::register_node(const NodeName& node, Host host) { hosts_[node] = host; }

Host Graph::host_of(const NodeName& node) const {
  const auto it = hosts_.find(node);
  if (it == hosts_.end()) throw std::invalid_argument("unknown node: " + node);
  return it->second;
}

void Graph::set_host(const NodeName& node, Host host) {
  if (!has_node(node)) throw std::invalid_argument("unknown node: " + node);
  hosts_[node] = host;
}

std::vector<NodeName> Graph::nodes() const {
  std::vector<NodeName> out;
  out.reserve(hosts_.size());
  for (const auto& [name, host] : hosts_) out.push_back(name);
  return out;
}

void Graph::enqueue(detail::SubscriptionRec& sub, const detail::ErasedMessage& msg,
                    TopicStats& stats) {
  if (sub.queue.size() >= sub.max_queue) {
    // Bounded queue, freshest wins: drop the oldest (ROS queue_size semantics).
    sub.queue.pop_front();
    ++sub.dropped;
    ++stats.dropped_queue;
  }
  sub.queue.push_back(msg);
}

void Graph::dispatch(detail::TopicRec& rec, const NodeName& publisher,
                     const detail::ErasedMessage& msg, const std::vector<uint8_t>* bytes) {
  const Host src = host_of(publisher);
  for (auto& sub : rec.subs) {
    const Host dst = host_of(sub->subscriber);
    if (dst == src || transport_ == nullptr) {
      enqueue(*sub, msg, rec.stats);
      ++rec.stats.delivered_local;
    } else {
      ++rec.stats.sent_remote;
      transport_->send(rec.name, sub->subscriber, src, dst, *bytes);
    }
  }
}

void Graph::deliver_serialized(const TopicName& topic, const NodeName& dst,
                               const std::vector<uint8_t>& bytes) {
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return;
  detail::TopicRec& rec = it->second;
  detail::ErasedMessage msg = rec.deserialize(bytes);
  for (auto& sub : rec.subs) {
    if (sub->subscriber == dst) {
      enqueue(*sub, msg, rec.stats);
      return;
    }
  }
}

size_t Graph::spin() {
  size_t invoked = 0;
  // Two-phase drain so that callbacks publishing new messages don't recurse
  // into queues we're iterating.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto& [name, rec] : topics_) {
      for (auto& sub : rec.subs) {
        while (!sub->queue.empty()) {
          detail::ErasedMessage msg = sub->queue.front();
          sub->queue.pop_front();
          ++sub->received;
          sub->callback(msg);
          ++invoked;
          progressed = true;
        }
      }
    }
  }
  return invoked;
}

std::optional<Host> Graph::service_host(const std::string& service) const {
  const auto it = services_.find(service);
  if (it == services_.end()) return std::nullopt;
  return host_of(it->second.first);
}

const TopicStats* Graph::topic_stats(const TopicName& topic) const {
  const auto it = topics_.find(topic);
  return it == topics_.end() ? nullptr : &it->second.stats;
}

std::vector<TopicName> Graph::topics() const {
  std::vector<TopicName> out;
  out.reserve(topics_.size());
  for (const auto& [name, rec] : topics_) out.push_back(name);
  return out;
}

size_t Graph::last_message_bytes(const TopicName& topic) const {
  const auto it = last_bytes_.find(topic);
  return it == last_bytes_.end() ? 0 : it->second;
}

}  // namespace lgv::mw
