#include "net/wireless_channel.h"

#include <algorithm>
#include <cmath>

namespace lgv::net {

WirelessChannel::WirelessChannel(ChannelConfig config, uint64_t seed)
    : config_(std::move(config)), rng_(seed) {}

double WirelessChannel::distance_to_wap() const {
  return std::max(1.0, distance(robot_, config_.wap_position));
}

double WirelessChannel::mean_rssi_dbm() const {
  // Log-distance path loss: RSSI(d) = RSSI(1m) - 10·n·log10(d), shifted by
  // any scripted RSSI cliff (AP handoff / interference fault).
  return config_.reference_rssi_dbm -
         10.0 * config_.path_loss_exponent * std::log10(distance_to_wap()) +
         override_.rssi_offset_db;
}

double WirelessChannel::sample_rssi_dbm() {
  return mean_rssi_dbm() + rng_.gaussian(0.0, config_.shadowing_sigma_db);
}

bool WirelessChannel::in_outage() {
  if (override_.force_outage) return true;
  return snr_db(sample_rssi_dbm()) < config_.outage_snr_db;
}

double WirelessChannel::loss_from_snr(double snr) const {
  if (snr >= config_.good_snr_db) return 0.0;
  if (snr <= config_.outage_snr_db) return 1.0;
  // Smooth ramp between the two thresholds; quadratic so that loss stays low
  // until the link is genuinely marginal (matches the sharp knee in Fig. 11).
  const double x =
      (config_.good_snr_db - snr) / (config_.good_snr_db - config_.outage_snr_db);
  return x * x;
}

double WirelessChannel::loss_probability() {
  const double geometric = loss_from_snr(snr_db(sample_rssi_dbm()));
  return std::clamp(geometric + override_.extra_loss, 0.0, 1.0);
}

double WirelessChannel::sample_latency(size_t bytes) {
  const double serialization =
      static_cast<double>(bytes) * 8.0 / effective_uplink_bps();
  const double jitter = std::abs(rng_.gaussian(0.0, config_.latency_jitter_s));
  // Weak links retransmit at the MAC layer before giving up, inflating
  // latency as SNR drops.
  const double snr = snr_db(mean_rssi_dbm());
  double mac_retry_factor = 1.0;
  if (snr < config_.good_snr_db) {
    const double x = (config_.good_snr_db - snr) /
                     (config_.good_snr_db - config_.outage_snr_db);
    mac_retry_factor = 1.0 + 3.0 * std::clamp(x, 0.0, 1.5);
  }
  return (config_.base_latency_s + serialization) * mac_retry_factor + jitter +
         config_.wan_latency_s + override_.extra_latency_s;
}

double WirelessChannel::quality_factor() {
  const double snr = snr_db(mean_rssi_dbm());
  return std::clamp((snr - config_.outage_snr_db) /
                        (config_.good_snr_db - config_.outage_snr_db),
                    0.05, 1.0);
}

double WirelessChannel::effective_uplink_bps() {
  return config_.uplink_rate_bps * quality_factor();
}

double WirelessChannel::effective_downlink_bps() {
  return config_.downlink_rate_bps * quality_factor();
}

}  // namespace lgv::net
