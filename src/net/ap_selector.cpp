#include "net/ap_selector.h"

#include <stdexcept>

namespace lgv::net {

size_t ApSelector::add_access_point(ChannelConfig config, uint64_t seed) {
  channels_.push_back(std::make_unique<WirelessChannel>(config, seed));
  return channels_.size() - 1;
}

bool ApSelector::update(const Point2D& robot, double now) {
  if (channels_.empty()) throw std::logic_error("ApSelector: no access points");
  for (auto& ch : channels_) ch->set_robot_position(robot);
  if (now < next_scan_) return false;
  next_scan_ = now + config_.scan_period_s;

  size_t best = active_;
  double best_rssi = channels_[active_]->mean_rssi_dbm() + config_.roam_margin_db;
  for (size_t i = 0; i < channels_.size(); ++i) {
    if (i == active_) continue;
    const double rssi = channels_[i]->mean_rssi_dbm();
    if (rssi > best_rssi) {
      best_rssi = rssi;
      best = i;
    }
  }
  if (best == active_) return false;
  active_ = best;
  handoff_until_ = now + config_.handoff_time_s;
  ++handoffs_;
  return true;
}

WirelessChannel& ApSelector::active_channel() { return *channels_[active_]; }

}  // namespace lgv::net
