// The kernel socket send buffer of Fig. 7. With a nonblocking UDP socket:
//  - sendto() copies the datagram into this buffer if there is room and the
//    driver is transmitting;
//  - when the driver detects a weak signal it stops draining the buffer
//    ("blocks"), so subsequent sendto() calls find the buffer full and the
//    datagram is silently DISCARDED — no error reaches the application and,
//    crucially, no latency sample ever records the loss. This is why tail
//    latency cannot measure UDP link quality (§VI) and why Algorithm 2 uses
//    receive-side bandwidth instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>

namespace lgv::net {

struct Datagram {
  uint64_t id = 0;
  size_t bytes = 0;
  double enqueue_time = 0.0;
};

class KernelBuffer {
 public:
  /// `capacity` in datagrams (real kernels bound by bytes; datagrams of one
  /// stream are near-constant size so the simplification is faithful).
  explicit KernelBuffer(size_t capacity = 4) : capacity_(capacity) {}

  /// Application-side sendto(): true if the datagram was accepted into the
  /// buffer, false if it was discarded (buffer full — EWOULDBLOCK on a
  /// nonblocking socket, which senders of fresh periodic data ignore).
  bool enqueue(const Datagram& d);

  /// Driver-side: pop the next datagram for transmission (empty when the
  /// buffer has drained). Only called while the driver is not blocked.
  std::optional<Datagram> dequeue();

  size_t size() const { return queue_.size(); }
  size_t capacity() const { return capacity_; }
  bool full() const { return queue_.size() >= capacity_; }
  bool empty() const { return queue_.empty(); }

  uint64_t accepted() const { return accepted_; }
  uint64_t discarded() const { return discarded_; }
  /// High-water mark of the queue depth — how close the driver came to
  /// blocking even when nothing was discarded.
  size_t peak_size() const { return peak_size_; }
  /// Bytes currently sitting in the buffer awaiting the driver.
  size_t queued_bytes() const { return queued_bytes_; }

  void clear() {
    queue_.clear();
    queued_bytes_ = 0;
  }

 private:
  size_t capacity_;
  std::deque<Datagram> queue_;
  uint64_t accepted_ = 0;
  uint64_t discarded_ = 0;
  size_t peak_size_ = 0;
  size_t queued_bytes_ = 0;
};

}  // namespace lgv::net
