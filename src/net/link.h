// Point-to-point transport emulation over the wireless channel, in virtual
// time. UdpLink reproduces the paper's freshness-over-reliability pattern
// (nonblocking socket + kernel buffer of Fig. 7); TcpLink is the reliable
// control channel the Switcher uses for state migration.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/telemetry/telemetry.h"
#include "net/kernel_buffer.h"
#include "net/wireless_channel.h"

namespace lgv::net {

/// Cached metric handles shared by both link flavors (`net_*` families,
/// labeled {link=<name>}): sends, the two drop causes of Fig. 7, deliveries,
/// bytes in flight on the air, kernel-buffer depth, and the one-way latency
/// distribution that a trace of "communication timestamps" would see.
struct LinkTelemetry {
  telemetry::Counter* sent = nullptr;
  telemetry::Counter* dropped_buffer = nullptr;
  telemetry::Counter* dropped_channel = nullptr;
  telemetry::Counter* delivered = nullptr;
  telemetry::Counter* retransmits = nullptr;  ///< TCP only; 0 on UDP links
  telemetry::Counter* corrupted = nullptr;    ///< wire-fault mutations applied
  telemetry::Counter* truncated = nullptr;
  telemetry::Counter* duplicated = nullptr;
  telemetry::Gauge* in_flight_bytes = nullptr;
  telemetry::Gauge* buffer_depth = nullptr;
  telemetry::Histogram* oneway_ms = nullptr;

  void wire(telemetry::Telemetry* telemetry, const std::string& link_name);
  bool wired() const { return sent != nullptr; }
};

struct Packet {
  uint64_t id = 0;
  std::vector<uint8_t> payload;
  double send_time = 0.0;     ///< when the application issued sendto()
  double air_time = 0.0;      ///< when the driver put it on the air (>= send_time)
  double deliver_time = 0.0;  ///< when the receiver sees it
};

struct LinkStats {
  /// Datagrams the kernel accepted for transmission. A sendto() rejected at
  /// a full buffer counts only as dropped_buffer — never both — so the
  /// delivery-ratio denominator stays honest during outage windows.
  uint64_t sent = 0;
  uint64_t dropped_buffer = 0;   ///< discarded at a full kernel buffer (Fig. 7)
  uint64_t dropped_channel = 0;  ///< lost in the air
  uint64_t delivered = 0;
  uint64_t retransmits = 0;      ///< TCP resends after channel loss
  // Wire-fault mutations (sim/fault_injector corrupt_burst/truncate/
  // duplicate/reorder): packets delivered *damaged* rather than lost. On the
  // TCP link corruption is caught by the transport checksum and shows up as
  // retransmits instead; duplicates are absorbed by its sequencing.
  uint64_t corrupted = 0;        ///< >= 1 byte flipped in flight
  uint64_t truncated = 0;        ///< delivered short
  uint64_t duplicated = 0;       ///< delivered twice
  uint64_t reordered = 0;        ///< arrival order inverted vs. send order

  /// Of everything the kernel accepted, the fraction that arrived.
  double delivery_ratio() const {
    return sent ? static_cast<double>(delivered) / static_cast<double>(sent) : 0.0;
  }
  /// Application-level view: sendto() attempts (accepted + buffer-rejected).
  uint64_t offered() const { return sent + dropped_buffer; }
};

/// Best-effort datagram link. Usage per virtual tick:
///   link.send(bytes, now);   // any number of times
///   link.step(now);          // drain driver, move packets through the air
///   for (auto& p : link.poll_delivered(now)) ...
class UdpLink {
 public:
  UdpLink(WirelessChannel* channel, size_t kernel_buffer_capacity = 4);

  /// Nonblocking sendto(). Returns false when the datagram was discarded at
  /// the kernel buffer; callers of periodic fresh data ignore the result,
  /// exactly as the paper's VDP streams do.
  bool send(std::vector<uint8_t> payload, double now);

  /// Advance the driver: while the signal is not in outage, drain the kernel
  /// buffer onto the air, applying per-packet loss and latency.
  void step(double now);

  /// Packets whose arrival time has passed, in arrival order.
  std::vector<Packet> poll_delivered(double now);

  const LinkStats& stats() const { return stats_; }
  const KernelBuffer& kernel_buffer() const { return buffer_; }
  WirelessChannel& channel() { return *channel_; }

  /// Wire `net_*` metrics labeled {link=link_name}; nullptr disconnects.
  void set_telemetry(telemetry::Telemetry* telemetry, const std::string& link_name);

 private:
  WirelessChannel* channel_;
  KernelBuffer buffer_;
  std::map<uint64_t, std::vector<uint8_t>> payloads_;  ///< buffered, not yet on air
  std::vector<Packet> in_flight_;
  size_t in_flight_bytes_ = 0;
  uint64_t next_id_ = 1;
  double max_delivered_send_time_ = -1.0;  ///< reorder detection watermark
  LinkStats stats_;
  LinkTelemetry telemetry_;
  Rng rng_{0x7d1f};
};

/// Reliable stream link: every send is eventually delivered; loss shows up as
/// retransmission latency instead (which is why TCP "hides packet loss in the
/// communication timestamps", §VI).
class TcpLink {
 public:
  TcpLink(WirelessChannel* channel, double retransmit_timeout_s = 0.2);

  void send(std::vector<uint8_t> payload, double now);
  void step(double now);
  std::vector<Packet> poll_delivered(double now);

  const LinkStats& stats() const { return stats_; }
  size_t unacked() const { return pending_.size(); }

  /// Wire `net_*` metrics labeled {link=link_name}; nullptr disconnects.
  void set_telemetry(telemetry::Telemetry* telemetry, const std::string& link_name);

 private:
  struct PendingSegment {
    Packet packet;
    double next_attempt = 0.0;
    int retries = 0;
  };

  WirelessChannel* channel_;
  double rto_;
  std::vector<PendingSegment> pending_;
  std::vector<Packet> in_flight_;
  size_t in_flight_bytes_ = 0;
  uint64_t next_id_ = 1;
  double max_delivered_send_time_ = -1.0;  ///< reorder detection watermark
  LinkStats stats_;
  LinkTelemetry telemetry_;
  Rng rng_{0x7cb2};
};

}  // namespace lgv::net
