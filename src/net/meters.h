// The observables Algorithm 2 consumes: receive-side packet bandwidth over a
// sliding window, RTT from request/response pairs, and the signal-direction
// estimate (is the LGV driving toward or away from the WAP?).
#pragma once

#include <deque>
#include <optional>

#include "common/geometry.h"
#include "common/stats.h"

namespace lgv::net {

/// Receive-side packet rate (Hz) over a fixed window — the "packet bandwidth"
/// metric of Algorithm 2. With a stable sending rate, a drop below the send
/// rate directly measures packet loss.
class BandwidthMeter {
 public:
  explicit BandwidthMeter(double window_sec = 1.0) : window_(window_sec) {}

  void on_packet(double now) { window_.add(now, 1.0); }
  /// Packets per second over the trailing window.
  double rate(double now) { return window_.rate(now); }

 private:
  TimeWindow window_;
};

/// Round-trip-time tracker. The Profiler stamps each uplink message and the
/// remote Switcher echoes the stamp back (§VII).
class RttMeter {
 public:
  void on_response(double sent_at, double received_at);

  std::optional<double> latest() const;
  double mean() const { return stats_.mean(); }
  double max() const { return stats_.max(); }
  size_t count() const { return stats_.count(); }

 private:
  RunningStats stats_;
  std::optional<double> latest_;
};

/// Signal direction d_t of Algorithm 2: positive when the LGV is closing on
/// the WAP, negative when it is driving away. Computed from the WAP position
/// marked in the LGV's internal map and a short history of robot positions
/// (smoothed so path wiggles don't flip the sign every tick).
class SignalDirectionEstimator {
 public:
  explicit SignalDirectionEstimator(Point2D wap_position, size_t history = 8)
      : wap_(wap_position), history_(history) {}

  void on_position(const Point2D& robot);

  /// Smoothed signed direction: >0 approaching the WAP, <0 receding,
  /// 0 when undetermined (not enough history / stationary).
  double direction() const;

  const Point2D& wap_position() const { return wap_; }

 private:
  Point2D wap_;
  size_t history_;
  std::deque<double> distances_;
};

}  // namespace lgv::net
