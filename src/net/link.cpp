#include "net/link.h"

#include <algorithm>

namespace lgv::net {

void LinkTelemetry::wire(telemetry::Telemetry* telemetry, const std::string& link_name) {
  if (telemetry == nullptr || !telemetry->enabled()) {
    *this = LinkTelemetry{};
    return;
  }
  const telemetry::Labels labels = {{"link", link_name}};
  auto& m = telemetry->metrics();
  sent = &m.counter("net_sent_total", labels);
  dropped_buffer = &m.counter("net_dropped_buffer_total", labels);
  dropped_channel = &m.counter("net_dropped_channel_total", labels);
  delivered = &m.counter("net_delivered_total", labels);
  retransmits = &m.counter("net_retransmits_total", labels);
  in_flight_bytes = &m.gauge("net_in_flight_bytes", labels);
  buffer_depth = &m.gauge("net_kernel_buffer_depth", labels);
  oneway_ms = &m.histogram("net_oneway_ms", labels, telemetry::latency_bounds_ms());
}

UdpLink::UdpLink(WirelessChannel* channel, size_t kernel_buffer_capacity)
    : channel_(channel), buffer_(kernel_buffer_capacity) {}

void UdpLink::set_telemetry(telemetry::Telemetry* telemetry,
                            const std::string& link_name) {
  telemetry_.wire(telemetry, link_name);
}

bool UdpLink::send(std::vector<uint8_t> payload, double now) {
  Datagram d;
  d.id = next_id_++;
  d.bytes = payload.size();
  d.enqueue_time = now;
  const bool accepted = buffer_.enqueue(d);
  if (telemetry_.wired()) {
    telemetry_.buffer_depth->set(static_cast<double>(buffer_.size()));
  }
  if (!accepted) {
    // Rejected by a full kernel buffer: the datagram was never sent, so it
    // must not also inflate the sent count (delivery-ratio denominator) —
    // exactly the distortion a forced-outage window would otherwise cause.
    ++stats_.dropped_buffer;
    if (telemetry_.wired()) telemetry_.dropped_buffer->inc();
    return false;
  }
  ++stats_.sent;
  if (telemetry_.wired()) telemetry_.sent->inc();
  payloads_.emplace(d.id, std::move(payload));
  return true;
}

void UdpLink::step(double now) {
  // The driver drains the buffer only while the signal is strong enough to
  // transmit (Fig. 7: a weak signal blocks the buffer and later sendto()
  // calls find it full).
  while (!buffer_.empty() && !channel_->in_outage()) {
    const Datagram d = *buffer_.dequeue();
    auto it = payloads_.find(d.id);
    std::vector<uint8_t> payload = std::move(it->second);
    payloads_.erase(it);

    // Per-packet Bernoulli loss at the instantaneous channel quality.
    if (rng_.bernoulli(channel_->loss_probability())) {
      ++stats_.dropped_channel;
      if (telemetry_.wired()) telemetry_.dropped_channel->inc();
      continue;
    }
    Packet pkt;
    pkt.id = d.id;
    pkt.payload = std::move(payload);
    pkt.send_time = d.enqueue_time;
    pkt.deliver_time = now + channel_->sample_latency(d.bytes);
    in_flight_bytes_ += pkt.payload.size();
    in_flight_.push_back(std::move(pkt));
  }
  if (telemetry_.wired()) {
    telemetry_.buffer_depth->set(static_cast<double>(buffer_.size()));
    telemetry_.in_flight_bytes->set(static_cast<double>(in_flight_bytes_));
  }
}

std::vector<Packet> UdpLink::poll_delivered(double now) {
  std::vector<Packet> out;
  auto it = in_flight_.begin();
  while (it != in_flight_.end()) {
    if (it->deliver_time <= now) {
      in_flight_bytes_ -= std::min(in_flight_bytes_, it->payload.size());
      out.push_back(std::move(*it));
      it = in_flight_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Packet& a, const Packet& b) { return a.deliver_time < b.deliver_time; });
  stats_.delivered += out.size();
  if (telemetry_.wired()) {
    for (const Packet& p : out) {
      telemetry_.delivered->inc();
      telemetry_.oneway_ms->observe((p.deliver_time - p.send_time) * 1e3);
    }
    telemetry_.in_flight_bytes->set(static_cast<double>(in_flight_bytes_));
  }
  return out;
}

TcpLink::TcpLink(WirelessChannel* channel, double retransmit_timeout_s)
    : channel_(channel), rto_(retransmit_timeout_s) {}

void TcpLink::set_telemetry(telemetry::Telemetry* telemetry,
                            const std::string& link_name) {
  telemetry_.wire(telemetry, link_name);
}

void TcpLink::send(std::vector<uint8_t> payload, double now) {
  ++stats_.sent;
  if (telemetry_.wired()) telemetry_.sent->inc();
  PendingSegment seg;
  seg.packet.id = next_id_++;
  seg.packet.payload = std::move(payload);
  seg.packet.send_time = now;
  seg.next_attempt = now;
  pending_.push_back(std::move(seg));
}

void TcpLink::step(double now) {
  auto it = pending_.begin();
  while (it != pending_.end()) {
    if (it->next_attempt > now || channel_->in_outage()) {
      ++it;
      continue;
    }
    if (rng_.bernoulli(channel_->loss_probability())) {
      ++stats_.dropped_channel;  // counted, but TCP will retransmit
      ++stats_.retransmits;
      if (telemetry_.wired()) {
        telemetry_.dropped_channel->inc();
        telemetry_.retransmits->inc();
      }
      it->next_attempt = now + rto_;
      ++it->retries;
      ++it;
      continue;
    }
    Packet pkt = std::move(it->packet);
    pkt.deliver_time =
        now + channel_->sample_latency(pkt.payload.size()) * (1.0 + 0.1 * it->retries);
    in_flight_bytes_ += pkt.payload.size();
    in_flight_.push_back(std::move(pkt));
    it = pending_.erase(it);
  }
  if (telemetry_.wired()) {
    // The control link's "kernel buffer" is its unacked send queue; without
    // these updates the gauges wired above stay frozen at 0 forever.
    telemetry_.buffer_depth->set(static_cast<double>(pending_.size()));
    telemetry_.in_flight_bytes->set(static_cast<double>(in_flight_bytes_));
  }
}

std::vector<Packet> TcpLink::poll_delivered(double now) {
  std::vector<Packet> out;
  auto it = in_flight_.begin();
  while (it != in_flight_.end()) {
    if (it->deliver_time <= now) {
      in_flight_bytes_ -= std::min(in_flight_bytes_, it->payload.size());
      out.push_back(std::move(*it));
      it = in_flight_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Packet& a, const Packet& b) { return a.deliver_time < b.deliver_time; });
  stats_.delivered += out.size();
  if (telemetry_.wired()) {
    for (const Packet& p : out) {
      telemetry_.delivered->inc();
      // For TCP the retransmission delay is inside this number — the latency
      // blowup that "hides packet loss in the communication timestamps".
      telemetry_.oneway_ms->observe((p.deliver_time - p.send_time) * 1e3);
    }
    telemetry_.in_flight_bytes->set(static_cast<double>(in_flight_bytes_));
  }
  return out;
}

}  // namespace lgv::net
