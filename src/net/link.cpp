#include "net/link.h"

#include <algorithm>

namespace lgv::net {

UdpLink::UdpLink(WirelessChannel* channel, size_t kernel_buffer_capacity)
    : channel_(channel), buffer_(kernel_buffer_capacity) {}

bool UdpLink::send(std::vector<uint8_t> payload, double now) {
  ++stats_.sent;
  Datagram d;
  d.id = next_id_++;
  d.bytes = payload.size();
  d.enqueue_time = now;
  if (!buffer_.enqueue(d)) {
    ++stats_.dropped_buffer;
    return false;
  }
  payloads_.emplace(d.id, std::move(payload));
  return true;
}

void UdpLink::step(double now) {
  // The driver drains the buffer only while the signal is strong enough to
  // transmit (Fig. 7: a weak signal blocks the buffer and later sendto()
  // calls find it full).
  while (!buffer_.empty() && !channel_->in_outage()) {
    const Datagram d = *buffer_.dequeue();
    auto it = payloads_.find(d.id);
    std::vector<uint8_t> payload = std::move(it->second);
    payloads_.erase(it);

    // Per-packet Bernoulli loss at the instantaneous channel quality.
    if (rng_.bernoulli(channel_->loss_probability())) {
      ++stats_.dropped_channel;
      continue;
    }
    Packet pkt;
    pkt.id = d.id;
    pkt.payload = std::move(payload);
    pkt.send_time = d.enqueue_time;
    pkt.deliver_time = now + channel_->sample_latency(d.bytes);
    in_flight_.push_back(std::move(pkt));
  }
}

std::vector<Packet> UdpLink::poll_delivered(double now) {
  std::vector<Packet> out;
  auto it = in_flight_.begin();
  while (it != in_flight_.end()) {
    if (it->deliver_time <= now) {
      out.push_back(std::move(*it));
      it = in_flight_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Packet& a, const Packet& b) { return a.deliver_time < b.deliver_time; });
  stats_.delivered += out.size();
  return out;
}

TcpLink::TcpLink(WirelessChannel* channel, double retransmit_timeout_s)
    : channel_(channel), rto_(retransmit_timeout_s) {}

void TcpLink::send(std::vector<uint8_t> payload, double now) {
  ++stats_.sent;
  PendingSegment seg;
  seg.packet.id = next_id_++;
  seg.packet.payload = std::move(payload);
  seg.packet.send_time = now;
  seg.next_attempt = now;
  pending_.push_back(std::move(seg));
}

void TcpLink::step(double now) {
  auto it = pending_.begin();
  while (it != pending_.end()) {
    if (it->next_attempt > now || channel_->in_outage()) {
      ++it;
      continue;
    }
    if (rng_.bernoulli(channel_->loss_probability())) {
      ++stats_.dropped_channel;  // counted, but TCP will retransmit
      it->next_attempt = now + rto_;
      ++it->retries;
      ++it;
      continue;
    }
    Packet pkt = std::move(it->packet);
    pkt.deliver_time =
        now + channel_->sample_latency(pkt.payload.size()) * (1.0 + 0.1 * it->retries);
    in_flight_.push_back(std::move(pkt));
    it = pending_.erase(it);
  }
}

std::vector<Packet> TcpLink::poll_delivered(double now) {
  std::vector<Packet> out;
  auto it = in_flight_.begin();
  while (it != in_flight_.end()) {
    if (it->deliver_time <= now) {
      out.push_back(std::move(*it));
      it = in_flight_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Packet& a, const Packet& b) { return a.deliver_time < b.deliver_time; });
  stats_.delivered += out.size();
  return out;
}

}  // namespace lgv::net
