#include "net/link.h"

#include <algorithm>
#include <cmath>
#include <random>

namespace lgv::net {

void LinkTelemetry::wire(telemetry::Telemetry* telemetry, const std::string& link_name) {
  if (telemetry == nullptr || !telemetry->enabled()) {
    *this = LinkTelemetry{};
    return;
  }
  const telemetry::Labels labels = {{"link", link_name}};
  auto& m = telemetry->metrics();
  sent = &m.counter("net_sent_total", labels);
  dropped_buffer = &m.counter("net_dropped_buffer_total", labels);
  dropped_channel = &m.counter("net_dropped_channel_total", labels);
  delivered = &m.counter("net_delivered_total", labels);
  retransmits = &m.counter("net_retransmits_total", labels);
  corrupted = &m.counter("net_corrupted_total", labels);
  truncated = &m.counter("net_truncated_total", labels);
  duplicated = &m.counter("net_duplicated_total", labels);
  in_flight_bytes = &m.gauge("net_in_flight_bytes", labels);
  buffer_depth = &m.gauge("net_kernel_buffer_depth", labels);
  oneway_ms = &m.histogram("net_oneway_ms", labels, telemetry::latency_bounds_ms());
}

namespace {

/// Flip one random bit in each byte selected by an independent per-byte
/// Bernoulli(p). Geometric gap sampling keeps the cost proportional to the
/// number of flips rather than the payload size. Returns bytes damaged.
size_t flip_random_bits(std::vector<uint8_t>& payload, double p, Rng& rng) {
  if (p <= 0.0 || payload.empty()) return 0;
  size_t flipped = 0;
  std::geometric_distribution<size_t> gap(p);
  for (size_t i = gap(rng.engine()); i < payload.size();
       i += 1 + gap(rng.engine())) {
    payload[i] ^= static_cast<uint8_t>(1u << rng.uniform_int(0, 7));
    ++flipped;
  }
  return flipped;
}

/// Probability that a frame of `bytes` bytes survives a per-byte flip
/// probability `p` undamaged.
double frame_damage_probability(double p, size_t bytes) {
  if (p <= 0.0 || bytes == 0) return 0.0;
  return 1.0 - std::pow(1.0 - p, static_cast<double>(bytes));
}

}  // namespace

UdpLink::UdpLink(WirelessChannel* channel, size_t kernel_buffer_capacity)
    : channel_(channel), buffer_(kernel_buffer_capacity) {}

void UdpLink::set_telemetry(telemetry::Telemetry* telemetry,
                            const std::string& link_name) {
  telemetry_.wire(telemetry, link_name);
}

bool UdpLink::send(std::vector<uint8_t> payload, double now) {
  Datagram d;
  d.id = next_id_++;
  d.bytes = payload.size();
  d.enqueue_time = now;
  const bool accepted = buffer_.enqueue(d);
  if (telemetry_.wired()) {
    telemetry_.buffer_depth->set(static_cast<double>(buffer_.size()));
  }
  if (!accepted) {
    // Rejected by a full kernel buffer: the datagram was never sent, so it
    // must not also inflate the sent count (delivery-ratio denominator) —
    // exactly the distortion a forced-outage window would otherwise cause.
    ++stats_.dropped_buffer;
    if (telemetry_.wired()) telemetry_.dropped_buffer->inc();
    return false;
  }
  ++stats_.sent;
  if (telemetry_.wired()) telemetry_.sent->inc();
  payloads_.emplace(d.id, std::move(payload));
  return true;
}

void UdpLink::step(double now) {
  // The driver drains the buffer only while the signal is strong enough to
  // transmit (Fig. 7: a weak signal blocks the buffer and later sendto()
  // calls find it full).
  while (!buffer_.empty() && !channel_->in_outage()) {
    const Datagram d = *buffer_.dequeue();
    auto it = payloads_.find(d.id);
    std::vector<uint8_t> payload = std::move(it->second);
    payloads_.erase(it);

    // Per-packet Bernoulli loss at the instantaneous channel quality.
    if (rng_.bernoulli(channel_->loss_probability())) {
      ++stats_.dropped_channel;
      if (telemetry_.wired()) telemetry_.dropped_channel->inc();
      continue;
    }
    Packet pkt;
    pkt.id = d.id;
    pkt.payload = std::move(payload);
    pkt.send_time = d.enqueue_time;
    pkt.air_time = now;  // kernel-buffer dwell ends here; the wire leg begins
    pkt.deliver_time = now + channel_->sample_latency(d.bytes);

    // Scripted wire faults (sim/fault_injector): UDP delivers damaged frames
    // as-is — the integrity layer above (core/switcher) is what rejects them.
    const ChannelOverride& ov = channel_->override_state();
    if (ov.corrupts()) {
      if (ov.truncate_prob > 0.0 && !pkt.payload.empty() &&
          rng_.bernoulli(std::min(ov.truncate_prob, 1.0))) {
        pkt.payload.resize(static_cast<size_t>(
            rng_.uniform_int(0, static_cast<int>(pkt.payload.size()) - 1)));
        ++stats_.truncated;
        if (telemetry_.wired()) telemetry_.truncated->inc();
      }
      if (flip_random_bits(pkt.payload, ov.corrupt_bit_prob, rng_) > 0) {
        ++stats_.corrupted;
        if (telemetry_.wired()) telemetry_.corrupted->inc();
      }
      if (ov.reorder_jitter_s > 0.0) {
        pkt.deliver_time += rng_.uniform(0.0, ov.reorder_jitter_s);
      }
      if (ov.duplicate_prob > 0.0 &&
          rng_.bernoulli(std::min(ov.duplicate_prob, 1.0))) {
        Packet dup = pkt;
        // The copy takes its own path through the network.
        dup.deliver_time = now + channel_->sample_latency(dup.payload.size()) +
                           rng_.uniform(0.0, std::max(ov.reorder_jitter_s, 0.002));
        ++stats_.duplicated;
        if (telemetry_.wired()) telemetry_.duplicated->inc();
        in_flight_bytes_ += dup.payload.size();
        in_flight_.push_back(std::move(dup));
      }
    }
    in_flight_bytes_ += pkt.payload.size();
    in_flight_.push_back(std::move(pkt));
  }
  if (telemetry_.wired()) {
    telemetry_.buffer_depth->set(static_cast<double>(buffer_.size()));
    telemetry_.in_flight_bytes->set(static_cast<double>(in_flight_bytes_));
  }
}

std::vector<Packet> UdpLink::poll_delivered(double now) {
  std::vector<Packet> out;
  auto it = in_flight_.begin();
  while (it != in_flight_.end()) {
    if (it->deliver_time <= now) {
      in_flight_bytes_ -= std::min(in_flight_bytes_, it->payload.size());
      out.push_back(std::move(*it));
      it = in_flight_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Packet& a, const Packet& b) { return a.deliver_time < b.deliver_time; });
  stats_.delivered += out.size();
  for (const Packet& p : out) {
    // A packet arriving after one that was sent later than it: the reorder
    // the Switcher's sequence numbers exist to catch.
    if (p.send_time < max_delivered_send_time_ - 1e-12) ++stats_.reordered;
    max_delivered_send_time_ = std::max(max_delivered_send_time_, p.send_time);
  }
  if (telemetry_.wired()) {
    for (const Packet& p : out) {
      telemetry_.delivered->inc();
      telemetry_.oneway_ms->observe((p.deliver_time - p.send_time) * 1e3);
    }
    telemetry_.in_flight_bytes->set(static_cast<double>(in_flight_bytes_));
  }
  return out;
}

TcpLink::TcpLink(WirelessChannel* channel, double retransmit_timeout_s)
    : channel_(channel), rto_(retransmit_timeout_s) {}

void TcpLink::set_telemetry(telemetry::Telemetry* telemetry,
                            const std::string& link_name) {
  telemetry_.wire(telemetry, link_name);
}

void TcpLink::send(std::vector<uint8_t> payload, double now) {
  ++stats_.sent;
  if (telemetry_.wired()) telemetry_.sent->inc();
  PendingSegment seg;
  seg.packet.id = next_id_++;
  seg.packet.payload = std::move(payload);
  seg.packet.send_time = now;
  seg.next_attempt = now;
  pending_.push_back(std::move(seg));
}

void TcpLink::step(double now) {
  auto it = pending_.begin();
  while (it != pending_.end()) {
    if (it->next_attempt > now || channel_->in_outage()) {
      ++it;
      continue;
    }
    if (rng_.bernoulli(channel_->loss_probability())) {
      ++stats_.dropped_channel;  // counted, but TCP will retransmit
      ++stats_.retransmits;
      if (telemetry_.wired()) {
        telemetry_.dropped_channel->inc();
        telemetry_.retransmits->inc();
      }
      it->next_attempt = now + rto_;
      ++it->retries;
      ++it;
      continue;
    }
    // Scripted wire corruption on the reliable link: the transport checksum
    // catches a damaged or truncated segment, so it costs a retransmission
    // instead of delivering bad bytes; duplicates are absorbed by TCP's own
    // sequencing and never surface.
    const ChannelOverride& ov = channel_->override_state();
    const double damage =
        1.0 - (1.0 - frame_damage_probability(ov.corrupt_bit_prob,
                                              it->packet.payload.size())) *
                  (1.0 - std::clamp(ov.truncate_prob, 0.0, 1.0));
    if (damage > 0.0 && rng_.bernoulli(std::min(damage, 1.0))) {
      ++stats_.corrupted;
      ++stats_.retransmits;
      if (telemetry_.wired()) {
        telemetry_.corrupted->inc();
        telemetry_.retransmits->inc();
      }
      it->next_attempt = now + rto_;
      ++it->retries;
      ++it;
      continue;
    }
    Packet pkt = std::move(it->packet);
    pkt.air_time = now;  // left the unacked send queue; retransmits push this out
    pkt.deliver_time =
        now + channel_->sample_latency(pkt.payload.size()) * (1.0 + 0.1 * it->retries);
    if (ov.reorder_jitter_s > 0.0) {
      pkt.deliver_time += rng_.uniform(0.0, ov.reorder_jitter_s);
    }
    in_flight_bytes_ += pkt.payload.size();
    in_flight_.push_back(std::move(pkt));
    it = pending_.erase(it);
  }
  if (telemetry_.wired()) {
    // The control link's "kernel buffer" is its unacked send queue; without
    // these updates the gauges wired above stay frozen at 0 forever.
    telemetry_.buffer_depth->set(static_cast<double>(pending_.size()));
    telemetry_.in_flight_bytes->set(static_cast<double>(in_flight_bytes_));
  }
}

std::vector<Packet> TcpLink::poll_delivered(double now) {
  std::vector<Packet> out;
  auto it = in_flight_.begin();
  while (it != in_flight_.end()) {
    if (it->deliver_time <= now) {
      in_flight_bytes_ -= std::min(in_flight_bytes_, it->payload.size());
      out.push_back(std::move(*it));
      it = in_flight_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Packet& a, const Packet& b) { return a.deliver_time < b.deliver_time; });
  stats_.delivered += out.size();
  for (const Packet& p : out) {
    if (p.send_time < max_delivered_send_time_ - 1e-12) ++stats_.reordered;
    max_delivered_send_time_ = std::max(max_delivered_send_time_, p.send_time);
  }
  if (telemetry_.wired()) {
    for (const Packet& p : out) {
      telemetry_.delivered->inc();
      // For TCP the retransmission delay is inside this number — the latency
      // blowup that "hides packet loss in the communication timestamps".
      telemetry_.oneway_ms->observe((p.deliver_time - p.send_time) * 1e3);
    }
    telemetry_.in_flight_bytes->set(static_cast<double>(in_flight_bytes_));
  }
  return out;
}

}  // namespace lgv::net
