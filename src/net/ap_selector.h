// The related-work baseline of §X: access-point selection [63]–[67] keeps a
// moving client connected by switching among multiple candidate WAPs based
// on bandwidth/signal assessment. The paper's critique: "this method cannot
// work when there are no multiple optional communication links" — Algorithm 2
// instead changes *where computation runs*. This module implements the
// baseline so the two strategies can be compared head-to-head
// (bench_baseline_ap_selection).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/wireless_channel.h"

namespace lgv::net {

struct ApSelectorConfig {
  /// Re-evaluate the association at this period (roaming scans are not free).
  double scan_period_s = 1.0;
  /// Only roam when the best candidate beats the current AP by this margin
  /// (dB) — standard hysteresis against ping-ponging.
  double roam_margin_db = 4.0;
  /// Association handshake outage after a roam (s).
  double handoff_time_s = 0.35;
};

/// Tracks several WAPs (one WirelessChannel per AP, all fed the same robot
/// position) and keeps the client associated with the best one.
class ApSelector {
 public:
  explicit ApSelector(ApSelectorConfig config = {}) : config_(config) {}

  /// Register a candidate access point. Returns its index.
  size_t add_access_point(ChannelConfig config, uint64_t seed);

  /// Update the robot position and (at the scan period) re-evaluate the
  /// association. Returns true when a handoff was initiated.
  bool update(const Point2D& robot, double now);

  /// The channel of the currently associated AP.
  WirelessChannel& active_channel();
  size_t active_index() const { return active_; }
  size_t access_point_count() const { return channels_.size(); }

  /// True while a handoff handshake is in flight (the link is down).
  bool in_handoff(double now) const { return now < handoff_until_; }
  uint64_t handoffs() const { return handoffs_; }

  /// Mean RSSI the client would see from AP `i` at the current position.
  double candidate_rssi(size_t i) const { return channels_[i]->mean_rssi_dbm(); }

 private:
  ApSelectorConfig config_;
  std::vector<std::unique_ptr<WirelessChannel>> channels_;
  size_t active_ = 0;
  double next_scan_ = 0.0;
  double handoff_until_ = -1.0;
  uint64_t handoffs_ = 0;
};

}  // namespace lgv::net
