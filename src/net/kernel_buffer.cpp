#include "net/kernel_buffer.h"

#include <algorithm>

namespace lgv::net {

bool KernelBuffer::enqueue(const Datagram& d) {
  if (full()) {
    ++discarded_;
    return false;
  }
  queue_.push_back(d);
  ++accepted_;
  queued_bytes_ += d.bytes;
  peak_size_ = std::max(peak_size_, queue_.size());
  return true;
}

std::optional<Datagram> KernelBuffer::dequeue() {
  if (queue_.empty()) return std::nullopt;
  Datagram d = queue_.front();
  queue_.pop_front();
  queued_bytes_ -= std::min(queued_bytes_, d.bytes);
  return d;
}

}  // namespace lgv::net
