#include "net/kernel_buffer.h"

namespace lgv::net {

bool KernelBuffer::enqueue(const Datagram& d) {
  if (full()) {
    ++discarded_;
    return false;
  }
  queue_.push_back(d);
  ++accepted_;
  return true;
}

std::optional<Datagram> KernelBuffer::dequeue() {
  if (queue_.empty()) return std::nullopt;
  Datagram d = queue_.front();
  queue_.pop_front();
  return d;
}

}  // namespace lgv::net
