#include "net/meters.h"

namespace lgv::net {

void RttMeter::on_response(double sent_at, double received_at) {
  const double rtt = received_at - sent_at;
  stats_.add(rtt);
  latest_ = rtt;
}

std::optional<double> RttMeter::latest() const { return latest_; }

void SignalDirectionEstimator::on_position(const Point2D& robot) {
  distances_.push_back(distance(robot, wap_));
  while (distances_.size() > history_) distances_.pop_front();
}

double SignalDirectionEstimator::direction() const {
  if (distances_.size() < 2) return 0.0;
  // Mean slope across the window: positive slope = distance growing =
  // receding, so direction is the negated slope.
  const double first = distances_.front();
  const double last = distances_.back();
  const double slope = (last - first) / static_cast<double>(distances_.size() - 1);
  if (std::abs(slope) < 1e-4) return 0.0;
  return -slope;
}

}  // namespace lgv::net
