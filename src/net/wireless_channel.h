// Wireless channel emulation between the LGV and the wireless access point
// (WAP). Implements a log-distance path-loss model with shadowing; signal
// quality degrades as the robot drives away from the WAP, which is exactly
// the mobility-induced failure mode §VI targets. The channel exposes the
// *physical* observables (RSSI, outage, per-packet loss/latency); everything
// Algorithm 2 measures is derived downstream from packet arrivals.
#pragma once

#include "common/geometry.h"
#include "common/rng.h"

namespace lgv::net {

struct ChannelConfig {
  Point2D wap_position;              ///< where the access point sits (world frame)
  double reference_rssi_dbm = -38.0; ///< RSSI at 1 m
  double path_loss_exponent = 3.0;   ///< indoor with walls ≈ 2.7–3.5
  double noise_floor_dbm = -92.0;
  double shadowing_sigma_db = 1.5;   ///< log-normal shadowing
  /// SNR above which the link is clean (loss ≈ 0).
  double good_snr_db = 28.0;
  /// SNR below which the driver sees a weak signal and *blocks* the kernel
  /// buffer instead of transmitting (the Fig. 7 behaviour).
  double outage_snr_db = 9.0;
  double base_latency_s = 0.0025;    ///< one-hop wireless latency
  double latency_jitter_s = 0.0008;
  /// Extra wired latency for packets continuing to the datacenter (0 for the
  /// in-lab edge gateway).
  double wan_latency_s = 0.0;
  double uplink_rate_bps = 20e6;     ///< nominal 5 GHz-band uplink
  /// Nominal AP→LGV rate. The WAP transmits at the same MCS ceiling by
  /// default; cloud→LGV state pull-backs are timed against this rate.
  double downlink_rate_bps = 20e6;
};

/// Scripted degradation layered on top of the geometric path-loss model —
/// what a FaultInjector (sim/fault_injector.h) writes each virtual tick.
/// All fields compose with (never replace) the position-derived conditions,
/// so a fault during an already-marginal window is strictly worse.
struct ChannelOverride {
  bool force_outage = false;     ///< driver blocks regardless of SNR
  double extra_loss = 0.0;       ///< added to per-packet loss probability
  double extra_latency_s = 0.0;  ///< added to every latency sample
  double rssi_offset_db = 0.0;   ///< shifts mean RSSI (AP-handoff cliff)

  // Wire-integrity fault plane: byte-level packet mutators applied by the
  // links as datagrams go onto the air (UdpLink/TcpLink::step). The geometric
  // model never corrupts — these only come from scripted faults.
  double corrupt_bit_prob = 0.0;   ///< per-byte flip probability, [0, 1]
  double truncate_prob = 0.0;      ///< per-packet probability of a short read
  double duplicate_prob = 0.0;     ///< per-packet probability of a duplicate
  double reorder_jitter_s = 0.0;   ///< uniform extra delay; inverts arrival order

  bool corrupts() const {
    return corrupt_bit_prob > 0.0 || truncate_prob > 0.0 ||
           duplicate_prob > 0.0 || reorder_jitter_s > 0.0;
  }
  bool any() const {
    return force_outage || extra_loss != 0.0 || extra_latency_s != 0.0 ||
           rssi_offset_db != 0.0 || corrupts();
  }
};

/// Channel conditions depend on the robot position, which the simulation
/// updates every tick via set_robot_position().
class WirelessChannel {
 public:
  explicit WirelessChannel(ChannelConfig config, uint64_t seed = 0x11acce55);

  void set_robot_position(const Point2D& p) { robot_ = p; }
  const Point2D& robot_position() const { return robot_; }
  const ChannelConfig& config() const { return config_; }

  /// Install / replace the scripted fault overlay (fault injection). The
  /// override composes with the geometric model; `ChannelOverride{}` clears.
  void set_override(const ChannelOverride& o) { override_ = o; }
  const ChannelOverride& override_state() const { return override_; }

  double distance_to_wap() const;
  /// Mean received signal strength at the current position (no shadowing).
  double mean_rssi_dbm() const;
  /// Instantaneous RSSI sample (shadowing applied; deterministic per seed).
  double sample_rssi_dbm();
  double snr_db(double rssi_dbm) const { return rssi_dbm - config_.noise_floor_dbm; }

  /// True when the driver currently considers the signal too weak to
  /// transmit: packets pile up in the kernel buffer (Fig. 7).
  bool in_outage();
  /// Per-packet loss probability given current conditions, in [0, 1].
  double loss_probability();
  /// One-way latency sample for a packet of `bytes` (s).
  double sample_latency(size_t bytes);
  /// Effective uplink rate degraded by signal quality (bps); Eq. 1b's R.
  double effective_uplink_bps();
  /// Effective AP→LGV rate under the same signal-quality scaling; used to
  /// time downlink state migrations (cloud→LGV pull-back).
  double effective_downlink_bps();

  /// Map an SNR to loss probability: 0 above good_snr, 1 below outage_snr,
  /// smooth in between. Exposed for tests.
  double loss_from_snr(double snr_db) const;

 private:
  /// Signal-quality factor in [0.05, 1] shared by both rate directions.
  double quality_factor();

  ChannelConfig config_;
  Point2D robot_;
  ChannelOverride override_;
  Rng rng_;
};

}  // namespace lgv::net
