// Level dispatch for the rollout kernel. The scalar reference path lives in
// TrajectoryRollout::compute; callers only come here with a vector level.
#include "control/rollout_kernels.h"

#include <cassert>

namespace lgv::control {

void rollout_simulate(simd::Level level, const RolloutSimArgs& args,
                      size_t begin, size_t end) {
  using simd::Level;
#if !defined(LGV_HAVE_AVX2)
  if (level == Level::kAVX2) level = Level::kSSE2;
#endif
#if !defined(LGV_HAVE_SSE2)
  level = Level::kScalar;
#endif
  assert(level != Level::kScalar && "caller owns the scalar path");
#if defined(LGV_HAVE_AVX2)
  if (level == Level::kAVX2) {
    detail::rollout_simulate_avx2(args, begin, end);
    return;
  }
#endif
#if defined(LGV_HAVE_SSE2)
  detail::rollout_simulate_sse2(args, begin, end);
#else
  (void)level;
  (void)args;
  (void)begin;
  (void)end;
#endif
}

}  // namespace lgv::control
