// Path Tracking: Trajectory Rollout / Dynamic Window local planner [48], [49]
// with the paper's Fig. 5 parallelization. The node samples M candidate
// (v, ω) commands inside the dynamic window, forward-simulates each into a
// trajectory, scores it against the costmap and the global path, discards
// colliding ones, and outputs the velocity of the best trajectory. M (the
// `samples` knob) is the Fig. 10 sweep parameter; scoring is embarrassingly
// parallel over trajectories and runs through ExecutionContext.
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "common/geometry.h"
#include "msg/messages.h"
#include "perception/costmap2d.h"
#include "platform/execution_context.h"

namespace lgv::control {

struct RolloutConfig {
  int samples = 200;          ///< number of simulated trajectories (Fig. 10 knob)
  double sim_time = 1.6;      ///< forward-simulation horizon (s)
  double sim_dt = 0.1;        ///< integration step (s)
  double max_angular = 1.8;   ///< rad/s sampling bound
  double max_linear_accel = 0.5;   ///< dynamic-window accel bound (m/s²)
  double max_angular_accel = 3.0;  ///< rad/s²
  double min_linear = 0.0;
  /// Carrot distance along the (pruned) global path the local planner chases.
  /// Chasing the global goal directly would pull the base into walls the
  /// path routes around.
  double lookahead_m = 1.2;
  /// Length of the pruned path window used for the path-proximity term.
  double path_window_m = 2.5;

  // Cost-function weights (proximity to goal / global path / obstacles, plus
  // oscillation suppression — §V's scoring characteristics). The obstacle
  // term uses the MEAN costmap cell cost along the trajectory so clearance
  // trades off against progress instead of vetoing all motion near inflation.
  double w_goal = 1.0;
  double w_path = 0.6;
  double w_obstacle = 0.008;
  double w_heading = 0.3;
  double w_oscillation = 0.15;

  /// Score candidates under dynamic scheduling (Schedule::kDynamic).
  /// Colliding trajectories early-exit the forward simulation, so the static
  /// Fig. 5 partition strands workers whose chunk happens to hold the cheap
  /// candidates; dynamic grabbing rebalances them. Scores are written
  /// per-candidate either way — the decision is schedule-independent. False
  /// selects the static reference partition.
  bool dynamic_schedule = true;

  /// Run the forward simulation through the vectorized rollout kernel when a
  /// SIMD level is active (see common/simd.h). The scalar loop stays compiled
  /// as the reference path and runs when this is false, when the build lacks
  /// the kernel TUs, or under LGV_SIMD=scalar. Positions agree with the
  /// scalar reference to rounding only (the kernel advances heading by a
  /// rotation recurrence), but per-candidate results never depend on how the
  /// candidate range is blocked or scheduled.
  bool use_simd = true;
};

struct RolloutStats {
  size_t simulated_steps = 0;   ///< total forward-simulation steps
  size_t trajectories = 0;
  size_t discarded = 0;         ///< collided / illegal trajectories
  double best_score = 0.0;
  /// Per-chunk cycle imbalance of the scoring region (longest chunk over the
  /// even-split ideal; 1.0 = balanced). Compares the schedules: static
  /// partitions inherit the candidate grid's collision pattern, dynamic
  /// grabbing flattens it.
  double chunk_imbalance = 1.0;
};

struct RolloutDecision {
  Velocity2D command;
  bool feasible = false;  ///< false when every trajectory collided
  RolloutStats stats;
};

class TrajectoryRollout {
 public:
  explicit TrajectoryRollout(RolloutConfig config = {}) : config_(config) {}

  const RolloutConfig& config() const { return config_; }
  void set_samples(int samples) { config_.samples = samples; }
  /// Runtime angular-rate bound from the Controller (see
  /// Controller::angular_cap); clamped to the configured mechanical limit.
  void set_angular_limit(double max_angular) {
    angular_limit_ = std::min(max_angular, config_.max_angular);
  }

  /// Pick the best velocity toward the path/goal under `max_linear` — the
  /// cap the Controller derives from Eq. 2c.
  RolloutDecision compute(const perception::Costmap2D& costmap,
                          const msg::PathMsg& path, const Pose2D& pose,
                          const Velocity2D& current, double max_linear,
                          platform::ExecutionContext& ctx);

 private:
  struct Candidate {
    double v;
    double w;
  };
  std::vector<Candidate> sample_window(const Velocity2D& current, double max_linear) const;

  RolloutConfig config_;
  double angular_limit_ = std::numeric_limits<double>::infinity();
  Velocity2D last_command_;
};

}  // namespace lgv::control
