#include "control/trajectory_rollout.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/arena.h"
#include "common/simd.h"
#include "common/soa.h"
#include "control/rollout_kernels.h"
#include "platform/calibration.h"

namespace lgv::control {

namespace calib = platform::calib;

std::vector<TrajectoryRollout::Candidate> TrajectoryRollout::sample_window(
    const Velocity2D& current, double max_linear) const {
  // Dynamic window: velocities reachable within one control period.
  const double v_lo = std::max(config_.min_linear,
                               current.linear - config_.max_linear_accel * config_.sim_dt * 4);
  const double v_hi = std::min(max_linear,
                               current.linear + config_.max_linear_accel * config_.sim_dt * 4);
  const double w_cap = std::min(config_.max_angular, angular_limit_);
  const double w_lo = std::max(-w_cap,
                               current.angular - config_.max_angular_accel * config_.sim_dt * 4);
  const double w_hi = std::min(w_cap,
                               current.angular + config_.max_angular_accel * config_.sim_dt * 4);

  // Arrange `samples` candidates on a v×w grid, denser in ω.
  const int n = std::max(1, config_.samples);
  int n_w = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n) * 2.0)));
  int n_v = std::max(1, n / std::max(1, n_w));
  while (n_v * n_w < n) ++n_w;

  std::vector<Candidate> out;
  out.reserve(static_cast<size_t>(n));
  for (int iv = 0; iv < n_v && static_cast<int>(out.size()) < n; ++iv) {
    const double v = n_v == 1 ? std::max(v_lo, std::min(v_hi, max_linear))
                              : v_lo + (v_hi - v_lo) * iv / (n_v - 1);
    for (int iw = 0; iw < n_w && static_cast<int>(out.size()) < n; ++iw) {
      const double w = n_w == 1 ? 0.0 : w_lo + (w_hi - w_lo) * iw / (n_w - 1);
      out.push_back({std::max(0.0, v), w});
    }
  }
  return out;
}

RolloutDecision TrajectoryRollout::compute(const perception::Costmap2D& costmap,
                                           const msg::PathMsg& path, const Pose2D& pose,
                                           const Velocity2D& current, double max_linear,
                                           platform::ExecutionContext& ctx) {
  RolloutDecision out;
  if (path.poses.empty()) return out;

  // Prune the path to the segment ahead of the robot and pick the carrot:
  // the waypoint ~lookahead_m further along. Scoring chases the carrot, not
  // the global goal — the goal may sit behind a wall the path routes around.
  size_t nearest = 0;
  double nearest_d = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < path.poses.size(); ++i) {
    const double d = distance(path.poses[i].position(), pose.position());
    if (d < nearest_d) {
      nearest_d = d;
      nearest = i;
    }
  }
  size_t carrot_idx = nearest;
  double along = 0.0;
  while (carrot_idx + 1 < path.poses.size() && along < config_.lookahead_m) {
    along += distance(path.poses[carrot_idx].position(),
                      path.poses[carrot_idx + 1].position());
    ++carrot_idx;
  }
  const Point2D goal = path.poses[carrot_idx].position();
  // Window of waypoints for the path-proximity term.
  std::vector<Point2D> window;
  double window_len = 0.0;
  for (size_t i = nearest; i < path.poses.size(); ++i) {
    window.push_back(path.poses[i].position());
    if (i > nearest) window_len += distance(window[window.size() - 2], window.back());
    if (window_len > config_.path_window_m) break;
  }

  const std::vector<Candidate> candidates = sample_window(current, max_linear);
  out.stats.trajectories = candidates.size();

  const int steps = std::max(1, static_cast<int>(config_.sim_time / config_.sim_dt));
  std::vector<double> scores(candidates.size(),
                             -std::numeric_limits<double>::infinity());
  std::atomic<size_t> total_steps{0};
  std::atomic<size_t> discarded{0};

  // Scoring epilogue shared by the scalar and vectorized paths: everything
  // after the forward simulation (path/goal/heading/oscillation terms) from
  // the candidate's final pose and accumulated obstacle cost.
  const auto score_of = [&](const Candidate& c, const Pose2D& p,
                            double obstacle_cost, int executed) -> double {
    // Proximity to the upcoming stretch of the global path.
    double path_dist = std::numeric_limits<double>::infinity();
    for (const Point2D& wp : window) {
      path_dist = std::min(path_dist, distance(wp, p.position()));
    }
    const double goal_dist = distance(goal, p.position());
    const double bearing = std::atan2(goal.y - p.y, goal.x - p.x);
    const double heading_err = std::abs(angle_diff(bearing, p.theta));
    const double oscillation =
        std::abs(c.w - last_command_.angular) + (c.v < 1e-3 ? 0.2 : 0.0);
    const double mean_obstacle =
        obstacle_cost / static_cast<double>(std::max(1, executed));
    return -config_.w_goal * goal_dist - config_.w_path * path_dist -
           config_.w_obstacle * mean_obstacle - config_.w_heading * heading_err -
           config_.w_oscillation * oscillation +
           0.05 * c.v;  // slight preference for progress
  };

  const platform::Schedule schedule = config_.dynamic_schedule
                                          ? platform::Schedule::kDynamic
                                          : platform::Schedule::kStatic;
  const simd::Level level = simd::active_level();
  const bool vectorized =
      config_.use_simd && level != simd::Level::kScalar && !candidates.empty();

  // ---- Fig. 5: parallel scoreTrajectory over the candidate set.
  const size_t regions_before = ctx.profile().regions.size();
  if (vectorized) {
    // SoA candidate arrays for the kernel's contiguous lane loads.
    const size_t n = candidates.size();
    aligned_vector<double> cand_v(n), cand_w(n);
    for (size_t i = 0; i < n; ++i) {
      cand_v[i] = candidates[i].v;
      cand_w[i] = candidates[i].w;
    }
    const GridFrame& cframe = costmap.frame();
    CostmapView view;
    view.cells = costmap.master().data().data();
    view.width = costmap.width();
    view.height = costmap.height();
    view.origin_x = cframe.origin.x;
    view.origin_y = cframe.origin.y;
    view.resolution = cframe.resolution;
    view.out_of_bounds = perception::kCostLethal;

    ctx.parallel_kernel_blocks(n, [&](size_t begin, size_t end) -> double {
      const size_t m = end - begin;
      Arena& arena = thread_scratch();
      const Arena::Scope scope(arena);
      RolloutSimArgs args;
      args.cand_v = cand_v.data();
      args.cand_w = cand_w.data();
      args.pose_x = pose.x;
      args.pose_y = pose.y;
      args.pose_theta = pose.theta;
      args.dt = config_.sim_dt;
      args.steps = steps;
      args.collision_cost = perception::kCostInscribed;
      args.costmap = view;
      args.out_x = arena.alloc_array<double>(m);
      args.out_y = arena.alloc_array<double>(m);
      args.out_theta = arena.alloc_array<double>(m);
      args.out_obstacle = arena.alloc_array<double>(m);
      args.out_executed = arena.alloc_array<int32_t>(m);
      args.out_illegal = arena.alloc_array<uint8_t>(m);
      rollout_simulate(level, args, begin, end);

      double cycles = 0.0;
      size_t block_steps = 0, block_discarded = 0;
      for (size_t k = 0; k < m; ++k) {
        const int executed = static_cast<int>(args.out_executed[k]);
        cycles += static_cast<double>(executed) * calib::kRolloutCyclesPerStep +
                  calib::kRolloutCyclesPerTrajectory;
        block_steps += static_cast<size_t>(executed);
        if (args.out_illegal[k] != 0) {
          ++block_discarded;
          continue;
        }
        const Pose2D p{args.out_x[k], args.out_y[k], args.out_theta[k]};
        scores[begin + k] =
            score_of(candidates[begin + k], p, args.out_obstacle[k], executed);
      }
      total_steps.fetch_add(block_steps, std::memory_order_relaxed);
      discarded.fetch_add(block_discarded, std::memory_order_relaxed);
      return cycles;
    },
    schedule);
  } else {
    ctx.parallel_kernel(candidates.size(), [&](size_t i) -> double {
      const Candidate c = candidates[i];
      Pose2D p = pose;
      double obstacle_cost = 0.0;
      bool illegal = false;
      int executed = 0;
      for (int s = 0; s < steps; ++s) {
        ++executed;
        // Unicycle forward simulation.
        p.x += c.v * std::cos(p.theta) * config_.sim_dt;
        p.y += c.v * std::sin(p.theta) * config_.sim_dt;
        p.theta = normalize_angle(p.theta + c.w * config_.sim_dt);
        const uint8_t cost = costmap.cost_at_world(p.position());
        if (cost >= perception::kCostInscribed) {  // lethal or unknown footprint
          illegal = true;
          break;
        }
        obstacle_cost += static_cast<double>(cost);
      }
      total_steps.fetch_add(static_cast<size_t>(executed), std::memory_order_relaxed);

      if (illegal) {
        discarded.fetch_add(1, std::memory_order_relaxed);
      } else {
        scores[i] = score_of(c, p, obstacle_cost, executed);
      }
      return static_cast<double>(executed) * calib::kRolloutCyclesPerStep +
             calib::kRolloutCyclesPerTrajectory;
    },
    schedule);
  }

  out.stats.simulated_steps = total_steps.load();
  out.stats.discarded = discarded.load();
  if (ctx.profile().regions.size() > regions_before) {
    out.stats.chunk_imbalance = ctx.profile().regions.back().imbalance();
  }

  // Sequential argmax (cheap).
  size_t best = candidates.size();
  double best_score = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (scores[i] > best_score) {
      best_score = scores[i];
      best = i;
    }
  }
  if (best == candidates.size() ||
      best_score == -std::numeric_limits<double>::infinity()) {
    // Everything collided: rotate in place toward the path.
    out.command = {0.0, 0.6};
    out.feasible = false;
    return out;
  }
  out.command = {candidates[best].v, candidates[best].w};
  out.feasible = true;
  out.stats.best_score = best_score;
  last_command_ = out.command;
  return out;
}

}  // namespace lgv::control
