#include "control/recovery.h"

#include <cmath>

namespace lgv::control {

std::optional<Velocity2D> RecoveryBehavior::update(double now, double speed,
                                                   bool has_goal,
                                                   std::optional<double> heading_error) {
  switch (phase_) {
    case Phase::kIdle: {
      if (!has_goal || speed > config_.stuck_speed ||
          now - last_recovery_end_ < config_.cooldown) {
        stuck_since_ = -1.0;
        return std::nullopt;
      }
      if (stuck_since_ < 0.0) stuck_since_ = now;
      if (now - stuck_since_ < config_.stuck_time) return std::nullopt;
      // Stuck: begin recovery.
      phase_ = Phase::kBackup;
      phase_started_ = now;
      recovery_started_ = now;
      ++recoveries_;
      return Velocity2D{config_.backup_speed, 0.0};
    }
    case Phase::kBackup: {
      if (now - recovery_started_ > config_.max_recovery_time) break;
      if (now - phase_started_ < config_.backup_time) {
        return Velocity2D{config_.backup_speed, 0.0};
      }
      phase_ = Phase::kRotate;
      phase_started_ = now;
      [[fallthrough]];
    }
    case Phase::kRotate: {
      if (now - recovery_started_ > config_.max_recovery_time) break;
      if (!heading_error.has_value() ||
          std::abs(*heading_error) < config_.aligned_tolerance) {
        break;  // aligned (or nothing to align to): recovery complete
      }
      const double w = *heading_error > 0 ? config_.rotate_speed : -config_.rotate_speed;
      return Velocity2D{0.0, w};
    }
  }
  // Recovery finished or aborted.
  phase_ = Phase::kIdle;
  stuck_since_ = -1.0;
  last_recovery_end_ = now;
  return std::nullopt;
}

}  // namespace lgv::control
