// Stuck-recovery state machine in the spirit of ROS navigation's recovery
// behaviors: when the base has a goal but creeps below a speed floor for too
// long (a DWA local minimum — typically nosed against inflated clutter), back
// up briefly, then rotate in place toward the path, then hand control back
// to Path Tracking. Runs on the LGV at a mux priority between safety and
// path tracking.
#pragma once

#include <optional>

#include "common/geometry.h"

namespace lgv::control {

struct RecoveryConfig {
  double stuck_speed = 0.05;      ///< below this the base counts as stuck…
  double stuck_time = 6.0;        ///< …for this long, with a goal pending
  double backup_time = 1.5;       ///< phase 1: reverse out of the inflation
  double backup_speed = -0.06;
  double rotate_speed = 0.5;      ///< phase 2: spin toward the path carrot
  double aligned_tolerance = 0.3; ///< done when |heading error| below this
  double max_recovery_time = 14.0;///< abort a recovery that isn't working
  double cooldown = 4.0;          ///< minimum gap between recoveries
};

class RecoveryBehavior {
 public:
  explicit RecoveryBehavior(RecoveryConfig config = {}) : config_(config) {}

  /// Call every control tick. `speed` is the current base speed, `has_goal`
  /// whether navigation is active, `heading_error` the signed bearing from
  /// the base heading to the path carrot (nullopt when no path). Returns the
  /// recovery command while a recovery is in progress, nullopt otherwise.
  std::optional<Velocity2D> update(double now, double speed, bool has_goal,
                                   std::optional<double> heading_error);

  bool recovering() const { return phase_ != Phase::kIdle; }
  int recoveries_triggered() const { return recoveries_; }
  const RecoveryConfig& config() const { return config_; }

 private:
  enum class Phase { kIdle, kBackup, kRotate };

  RecoveryConfig config_;
  Phase phase_ = Phase::kIdle;
  double stuck_since_ = -1.0;   ///< <0: not currently slow
  double phase_started_ = 0.0;
  double recovery_started_ = 0.0;
  double last_recovery_end_ = -1e18;
  int recoveries_ = 0;
};

}  // namespace lgv::control
