// Velocity Multiplexer in the style of Yujin Robot's yocs_cmd_vel_mux [50]:
// several sources (path tracking, safety controller, joystick, …) publish
// velocity commands with priorities; the mux forwards the highest-priority
// command that is still fresh. The final hop of the VDP.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/geometry.h"
#include "msg/messages.h"
#include "platform/execution_context.h"

namespace lgv::control {

struct MuxInput {
  std::string name;
  int priority = 0;       ///< higher wins
  double timeout_s = 0.5; ///< command expires after this long
};

class VelocityMultiplexer {
 public:
  void add_input(const MuxInput& input);

  /// Retune an input's freshness window at runtime (the Controller widens it
  /// when the VDP makespan grows so a slow-but-alive pipeline keeps driving).
  void set_timeout(const std::string& source, double timeout_s);

  /// Feed a command from a registered source at virtual time `now`.
  void on_command(const std::string& source, const Velocity2D& cmd, double now);

  /// The command to forward to the actuators at `now`: highest-priority
  /// unexpired input, or zero velocity when everything timed out (safety
  /// stop — this is what halts the LGV when the VDP stalls under a dead
  /// network). Charges its (tiny) arbitration cost to ctx.
  Velocity2D select(double now, platform::ExecutionContext& ctx);

  /// Name of the source that won the last select(), if any.
  const std::optional<std::string>& active_source() const { return active_; }

 private:
  struct Slot {
    MuxInput input;
    Velocity2D last_cmd;
    double last_time = -1e18;
  };
  std::map<std::string, Slot> slots_;
  std::optional<std::string> active_;
};

}  // namespace lgv::control
