// Vectorized forward simulation for the Trajectory Rollout score loop.
// Each candidate (v, ω) integrates the unicycle model for `steps` steps and
// probes the costmap master grid along the way; the per-candidate scoring
// epilogue (path/goal/heading terms) stays scalar in TrajectoryRollout.
//
// Heading is advanced by a rotation recurrence (cos/sin evaluated by libm
// once per candidate for ω·dt, then rotated each step) instead of per-step
// libm calls, so positions agree with the scalar reference only to rounding
// — bounded-epsilon, not bit-identical. Per-candidate outputs are still
// independent of how callers block the candidate range (lanes never interact
// and dead lanes are frozen), which is what the schedule-equivalence tests
// require.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/simd.h"

namespace lgv::control {

/// Raw read-only view of the costmap master grid (Grid<uint8_t>, row-major
/// y·width + x). Off-grid probes yield `out_of_bounds`, matching
/// Costmap2D::cost_at.
struct CostmapView {
  const uint8_t* cells = nullptr;
  int width = 0;
  int height = 0;
  double origin_x = 0.0, origin_y = 0.0, resolution = 0.05;
  uint8_t out_of_bounds = 254;  ///< kCostLethal
};

struct RolloutSimArgs {
  /// Global candidate arrays; rollout_simulate reads [begin, end).
  const double* cand_v = nullptr;
  const double* cand_w = nullptr;
  /// Start pose shared by every candidate.
  double pose_x = 0.0, pose_y = 0.0, pose_theta = 0.0;
  double dt = 0.1;
  int steps = 16;
  uint8_t collision_cost = 253;  ///< probe ≥ this → trajectory illegal
  CostmapView costmap;
  /// Outputs, indexed [0, end − begin): final pose (frozen at the collision
  /// step for illegal candidates, normalize_angle'd θ), summed probe cost,
  /// simulated step count, and the illegal flag.
  double* out_x = nullptr;
  double* out_y = nullptr;
  double* out_theta = nullptr;
  double* out_obstacle = nullptr;
  int32_t* out_executed = nullptr;
  uint8_t* out_illegal = nullptr;
};

/// Simulate candidates [begin, end). `level` must be a vector level; the
/// scalar reference loop lives in TrajectoryRollout::compute.
void rollout_simulate(simd::Level level, const RolloutSimArgs& args,
                      size_t begin, size_t end);

namespace detail {
void rollout_simulate_sse2(const RolloutSimArgs& args, size_t begin, size_t end);
void rollout_simulate_avx2(const RolloutSimArgs& args, size_t begin, size_t end);
}  // namespace detail

}  // namespace lgv::control
