#include "control/safety_controller.h"

#include <cmath>

namespace lgv::control {

std::optional<Velocity2D> SafetyController::evaluate(const msg::LaserScan& scan) const {
  // Consider the forward 90° cone only — the direction of travel.
  double min_forward = scan.range_max + 1.0;
  for (size_t i = 0; i < scan.ranges.size(); ++i) {
    const double angle = scan.angle_of(i);
    if (std::abs(normalize_angle(angle)) > 0.7854) continue;
    const double r = static_cast<double>(scan.ranges[i]);
    if (r < scan.range_min || r > scan.range_max) continue;
    min_forward = std::min(min_forward, r);
  }
  if (min_forward <= config_.stop_distance) {
    return Velocity2D{config_.backoff_speed, 0.0};
  }
  return std::nullopt;
}

}  // namespace lgv::control
