#include "control/velocity_mux.h"

#include <stdexcept>

#include "platform/calibration.h"

namespace lgv::control {

void VelocityMultiplexer::add_input(const MuxInput& input) {
  slots_[input.name] = Slot{input, {}, -1e18};
}

void VelocityMultiplexer::set_timeout(const std::string& source, double timeout_s) {
  const auto it = slots_.find(source);
  if (it == slots_.end()) throw std::invalid_argument("unknown mux source: " + source);
  it->second.input.timeout_s = timeout_s;
}

void VelocityMultiplexer::on_command(const std::string& source, const Velocity2D& cmd,
                                     double now) {
  const auto it = slots_.find(source);
  if (it == slots_.end()) throw std::invalid_argument("unknown mux source: " + source);
  it->second.last_cmd = cmd;
  it->second.last_time = now;
}

Velocity2D VelocityMultiplexer::select(double now, platform::ExecutionContext& ctx) {
  ctx.serial_work(platform::calib::kVelMuxCyclesPerCommand);
  const Slot* best = nullptr;
  for (const auto& [name, slot] : slots_) {
    if (now - slot.last_time > slot.input.timeout_s) continue;  // stale
    if (best == nullptr || slot.input.priority > best->input.priority) {
      best = &slot;
    }
  }
  if (best == nullptr) {
    active_.reset();
    return {};  // safety stop
  }
  active_ = best->input.name;
  return best->last_cmd;
}

}  // namespace lgv::control
