// Templated body of the rollout forward-simulation kernel; instantiated per
// ISA TU with the simd_vec.h wrappers. See rollout_kernels.h for the
// numerics contract (bounded-epsilon vs. the scalar reference, per-candidate
// results independent of the caller's blocking).
#pragma once

#include <algorithm>
#include <cmath>

#include "common/geometry.h"
#include "common/simd_vec.h"
#include "control/rollout_kernels.h"

namespace lgv::control {

template <class V>
void rollout_simulate_impl(const RolloutSimArgs& a, size_t begin, size_t end) {
  constexpr int W = V::kWidth;
  const CostmapView& cm = a.costmap;
  const double c0 = std::cos(a.pose_theta);
  const double s0 = std::sin(a.pose_theta);
  const V vdt = V::set1(a.dt);

  for (size_t i = begin; i < end; i += W) {
    const size_t rem = std::min<size_t>(W, end - i);
    // Lane setup; padding lanes duplicate the last candidate so every lane
    // runs meaningful arithmetic (no NaN/denormal stalls), and their results
    // are simply not written back.
    alignas(32) double lv[W], lw[W], lcw[W], lsw[W];
    for (int l = 0; l < W; ++l) {
      const size_t s = i + (static_cast<size_t>(l) < rem ? l : rem - 1);
      lv[l] = a.cand_v[s];
      lw[l] = a.cand_w[s];
      // One libm cos/sin pair per candidate; per-step headings come from
      // rotating (cos θ, sin θ) by ω·dt.
      lcw[l] = std::cos(lw[l] * a.dt);
      lsw[l] = std::sin(lw[l] * a.dt);
    }
    const V vv = V::load(lv);
    const V vwdt = V::load(lw) * vdt;
    const V vcw = V::load(lcw), vsw = V::load(lsw);

    V px = V::set1(a.pose_x), py = V::set1(a.pose_y);
    V th = V::set1(a.pose_theta);  // unwrapped; normalized on write-back
    V ct = V::set1(c0), st = V::set1(s0);

    alignas(32) double bx[W], by[W], bth[W];
    double obstacle[W] = {0.0};
    double fx[W], fy[W], fth[W];
    bool alive[W];
    bool illegal[W] = {false};
    int executed[W] = {0};
    for (int l = 0; l < W; ++l) alive[l] = true;
    int n_alive = W;

    for (int step = 0; step < a.steps && n_alive > 0; ++step) {
      // Unicycle update, same op order as the scalar loop: the position uses
      // the heading *before* this step's turn.
      px = px + (vv * ct) * vdt;
      py = py + (vv * st) * vdt;
      th = th + vwdt;
      const V nct = (ct * vcw) - (st * vsw);
      const V nst = (st * vcw) + (ct * vsw);
      ct = nct;
      st = nst;

      V::store(bx, px);
      V::store(by, py);
      V::store(bth, th);
      for (int l = 0; l < W; ++l) {
        if (!alive[l]) continue;
        executed[l] = step + 1;
        const int cx = static_cast<int>(
            std::floor((bx[l] - cm.origin_x) / cm.resolution));
        const int cy = static_cast<int>(
            std::floor((by[l] - cm.origin_y) / cm.resolution));
        const bool in =
            cx >= 0 && cx < cm.width && cy >= 0 && cy < cm.height;
        const uint8_t cost =
            in ? cm.cells[static_cast<size_t>(cy) * cm.width + cx]
               : cm.out_of_bounds;
        if (cost >= a.collision_cost) {
          illegal[l] = true;
          alive[l] = false;
          --n_alive;
          fx[l] = bx[l];
          fy[l] = by[l];
          fth[l] = bth[l];
          continue;
        }
        obstacle[l] += static_cast<double>(cost);
      }
    }

    V::store(bx, px);
    V::store(by, py);
    V::store(bth, th);
    for (size_t l = 0; l < rem; ++l) {
      const size_t o = (i - begin) + l;
      const bool survived = alive[l];
      a.out_x[o] = survived ? bx[l] : fx[l];
      a.out_y[o] = survived ? by[l] : fy[l];
      a.out_theta[o] = normalize_angle(survived ? bth[l] : fth[l]);
      a.out_obstacle[o] = obstacle[l];
      a.out_executed[o] = executed[l];
      a.out_illegal[o] = illegal[l] ? 1 : 0;
    }
  }
}

}  // namespace lgv::control
