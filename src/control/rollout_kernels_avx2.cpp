// AVX2 instantiation of the rollout kernel; compiled with -mavx2 -mfma
// -ffp-contract=off and only dispatched to when CPUID reports avx2+fma.
#include "common/simd_vec.h"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__AVX2__)

#include "control/rollout_kernels_impl.h"

namespace lgv::control::detail {

void rollout_simulate_avx2(const RolloutSimArgs& args, size_t begin,
                           size_t end) {
  rollout_simulate_impl<lgv::simd::VecAVX2>(args, begin, end);
}

}  // namespace lgv::control::detail

#endif
