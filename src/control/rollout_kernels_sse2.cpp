// SSE2 instantiation of the rollout kernel (baseline x86-64; compiled with
// -ffp-contract=off so the integrator's op order is what the source says).
#include "common/simd_vec.h"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__SSE2__)

#include "control/rollout_kernels_impl.h"

namespace lgv::control::detail {

void rollout_simulate_sse2(const RolloutSimArgs& args, size_t begin,
                           size_t end) {
  rollout_simulate_impl<lgv::simd::VecSSE2>(args, begin, end);
}

}  // namespace lgv::control::detail

#endif
