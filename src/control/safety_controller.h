// Minimal reactive safety controller: watches the raw scan and, when an
// obstacle is inside the stop distance, injects a high-priority stop/backoff
// command into the Velocity Multiplexer. The paper's §IX notes such
// safety-critical nodes must never be offloaded — the runtime pins this node
// to the LGV.
#pragma once

#include <optional>

#include "common/geometry.h"
#include "msg/messages.h"

namespace lgv::control {

struct SafetyConfig {
  double stop_distance = 0.16;   ///< back off when anything is this close ahead
  double backoff_speed = -0.05;  ///< m/s while escaping
};

class SafetyController {
 public:
  explicit SafetyController(SafetyConfig config = {}) : config_(config) {}

  /// A backoff command when something is inside the stop distance ahead,
  /// nullopt otherwise. Intervention is deliberately minimal: anything
  /// smarter (slowing near obstacles, steering) belongs to Path Tracking —
  /// a high-priority source that keeps commanding forward motion would
  /// livelock the vehicle against a wall.
  std::optional<Velocity2D> evaluate(const msg::LaserScan& scan) const;

  const SafetyConfig& config() const { return config_; }

 private:
  SafetyConfig config_;
};

}  // namespace lgv::control
